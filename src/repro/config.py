"""Machine and methodology configuration.

Machine configurations are declared in the data-driven registry
(:mod:`repro.machines`) and validated into the frozen dataclasses below;
:func:`table1_8core` / :func:`table1_32core` remain as wrappers for the
paper's Table I machines (one and four sockets of an 8-core, 2.66 GHz,
4-wide part with a 3-level cache hierarchy).  :func:`scaled` shrinks cache
capacities for use with the scaled-down synthetic workloads (see DESIGN.md
section 2), preserving the capacity *ratios* between levels and between
machines.  :func:`simpoint_defaults` reproduces Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError

CACHE_LINE_BYTES = 64


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    associativity: int
    latency_cycles: int
    line_bytes: int = CACHE_LINE_BYTES

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0:
            raise ConfigError("cache size and associativity must be positive")
        if self.size_bytes % (self.associativity * self.line_bytes) != 0:
            raise ConfigError(
                f"cache size {self.size_bytes} not divisible into "
                f"{self.associativity}-way sets of {self.line_bytes}B lines"
            )
        if not _is_pow2(self.num_sets):
            raise ConfigError(f"number of sets must be a power of two, got {self.num_sets}")

    @property
    def num_lines(self) -> int:
        """Total line capacity of the cache."""
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets (lines / associativity)."""
        return self.num_lines // self.associativity


@dataclass(frozen=True)
class CoreConfig:
    """Interval-model core parameters (Table I, 'Core' and 'Branch predictor')."""

    frequency_ghz: float = 2.66
    dispatch_width: int = 4
    rob_entries: int = 128
    branch_miss_penalty: int = 8
    max_outstanding_misses: int = 4

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ConfigError("core frequency must be positive")
        if self.dispatch_width <= 0:
            raise ConfigError("dispatch width must be positive")
        if self.max_outstanding_misses <= 0:
            raise ConfigError("max outstanding misses must be positive")


@dataclass(frozen=True)
class MemConfig:
    """Main memory parameters (Table I, 'Main memory')."""

    latency_ns: float = 65.0
    bandwidth_gbps_per_socket: float = 8.0

    def __post_init__(self) -> None:
        if self.latency_ns <= 0 or self.bandwidth_gbps_per_socket <= 0:
            raise ConfigError("memory latency and bandwidth must be positive")


@dataclass(frozen=True)
class TopologyConfig:
    """Core-complex topology of one socket (CCX-style grouping).

    ``cores_per_complex`` lists the core count of each complex inside a
    socket, in core-id order; the empty tuple is the flat default — one
    complex spanning the whole socket, which degenerates to the paper's
    per-socket shared L3 everywhere.  The two extra-cycle figures are the
    latency *classes* a cross-core transfer is charged beyond the base L3
    latency: zero intra-complex, ``cross_complex_extra_cycles`` between
    complexes of one socket, and the machine's
    ``remote_socket_extra_cycles`` between sockets.

    ``interconnect_gbps`` optionally bounds the sustained bandwidth of the
    fabric carrying cross-complex and cross-socket line transfers (the
    IO-die / inter-socket links); ``None`` leaves the fabric unconstrained,
    which is the flat machines' behavior.
    """

    cores_per_complex: tuple[int, ...] = ()
    cross_complex_extra_cycles: int = 24
    interconnect_gbps: float | None = None

    def __post_init__(self) -> None:
        # Registry specs arrive as lists; freeze them for hashing.
        if not isinstance(self.cores_per_complex, tuple):
            object.__setattr__(
                self, "cores_per_complex", tuple(self.cores_per_complex)
            )
        if any(n <= 0 for n in self.cores_per_complex):
            raise ConfigError("complex core counts must be positive")
        if self.cross_complex_extra_cycles < 0:
            raise ConfigError("cross-complex extra cycles must be >= 0")
        if self.interconnect_gbps is not None and self.interconnect_gbps <= 0:
            raise ConfigError("interconnect bandwidth must be positive")

    @property
    def is_flat(self) -> bool:
        """True for the degenerate one-complex-per-socket topology."""
        return len(self.cores_per_complex) <= 1


@dataclass(frozen=True)
class MachineConfig:
    """A complete simulated machine: sockets of cores plus cache hierarchy."""

    name: str
    num_sockets: int
    cores_per_socket: int
    core: CoreConfig = field(default_factory=CoreConfig)
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 4, 4)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 8, 4)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(256 * 1024, 8, 8)
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig(8 * 1024 * 1024, 16, 30)
    )
    mem: MemConfig = field(default_factory=MemConfig)
    barrier_hop_cycles: int = 20
    remote_socket_extra_cycles: int = 60
    #: Memory-hierarchy backend name (see :mod:`repro.mem.backends`); the
    #: default is the paper's inclusive-L3 hierarchy.
    hierarchy: str = "inclusive"
    #: Core-complex topology of each socket; the default is flat (one
    #: complex per socket), which every pre-topology machine maps to.
    topology: TopologyConfig = field(default_factory=TopologyConfig)

    def __post_init__(self) -> None:
        if self.num_sockets <= 0 or self.cores_per_socket <= 0:
            raise ConfigError("socket and core counts must be positive")
        if not self.hierarchy or not isinstance(self.hierarchy, str):
            raise ConfigError("hierarchy backend name must be a non-empty string")
        per_complex = self.topology.cores_per_complex
        if per_complex and sum(per_complex) != self.cores_per_socket:
            raise ConfigError(
                f"topology complexes {per_complex} hold "
                f"{sum(per_complex)} cores but the socket has "
                f"{self.cores_per_socket}"
            )

    @property
    def num_cores(self) -> int:
        """Total core count across sockets."""
        return self.num_sockets * self.cores_per_socket

    @property
    def total_llc_bytes(self) -> int:
        """Aggregate last-level-cache capacity across sockets (warmup budget)."""
        return self.l3.size_bytes * self.num_sockets

    @property
    def dram_latency_cycles(self) -> int:
        """Main-memory access latency converted to core cycles."""
        return round(self.mem.latency_ns * self.core.frequency_ghz)

    def socket_of(self, core_id: int) -> int:
        """Socket index owning ``core_id``."""
        if not 0 <= core_id < self.num_cores:
            raise ConfigError(f"core {core_id} out of range [0, {self.num_cores})")
        return core_id // self.cores_per_socket

    @property
    def complexes_per_socket(self) -> int:
        """Core complexes in each socket (1 for flat machines)."""
        return max(1, len(self.topology.cores_per_complex))

    @property
    def num_complexes(self) -> int:
        """Total core-complex count across sockets."""
        return self.num_sockets * self.complexes_per_socket

    @property
    def socket_complex_sizes(self) -> tuple[int, ...]:
        """Core count of each complex within one socket, in core order."""
        per_complex = self.topology.cores_per_complex
        return per_complex if per_complex else (self.cores_per_socket,)

    def topology_label(self) -> str:
        """Compact ``sockets x complexes`` summary for registry listings.

        Returns:
            ``"flat"`` for one complex per socket, else e.g. ``"1s x 4x8"``
            (uniform complexes) or ``"1s x (4+2)"`` (imbalanced).
        """
        sizes = self.socket_complex_sizes
        if len(sizes) <= 1:
            return "flat"
        if len(set(sizes)) == 1:
            shape = f"{len(sizes)}x{sizes[0]}"
        else:
            shape = "(" + "+".join(str(n) for n in sizes) + ")"
        return f"{self.num_sockets}s x {shape}"

    def fingerprint(self) -> str:
        """Stable hex digest of every parameter (artifact-store keying)."""
        from repro.store.fingerprint import config_fingerprint

        return config_fingerprint(self)


def table1_8core() -> MachineConfig:
    """The paper's single-socket, 8-core machine (Table I).

    Kept as a convenience wrapper; the configuration itself now lives in
    the machine registry (:mod:`repro.machines`) under ``table1-8core``.
    """
    from repro.machines import get_machine

    return get_machine("table1-8core")


def table1_32core() -> MachineConfig:
    """The paper's four-socket, 32-core machine (Table I).

    Kept as a convenience wrapper; the configuration itself now lives in
    the machine registry (:mod:`repro.machines`) under ``table1-32core``.
    """
    from repro.machines import get_machine

    return get_machine("table1-32core")


def scaled(
    base: MachineConfig, factor: int = 16, l3_factor: int | None = None
) -> MachineConfig:
    """Shrink every cache in ``base`` by ``factor`` (capacity only).

    Associativities, latencies, core model and DRAM parameters are kept, so
    hit/miss *ratios* against the scaled synthetic working sets mirror the
    paper-scale machine against class-A working sets.

    ``l3_factor`` (default ``4 * factor``) shrinks the LLC further: the
    synthetic regions are shorter relative to their footprints than class-A
    regions are, so a proportionally smaller LLC keeps streaming phases in
    the same regime (region length >> LLC) the paper operates in — this is
    what makes region timing insensitive to inherited cache state, the
    property the warmup evaluation of section VI-B depends on.
    """
    if factor <= 0:
        raise ConfigError("scale factor must be positive")
    if l3_factor is None:
        l3_factor = 4 * factor
    if l3_factor <= 0:
        raise ConfigError("l3 scale factor must be positive")

    def shrink(cache: CacheConfig, f: int) -> CacheConfig:
        new_size = cache.size_bytes // f
        min_size = cache.associativity * cache.line_bytes
        if new_size < min_size:
            new_size = min_size
        # Round down to a power-of-two set count.
        sets = new_size // min_size
        sets = 1 << (sets.bit_length() - 1)
        return replace(cache, size_bytes=sets * min_size)

    return replace(
        base,
        name=f"{base.name}-scaled{factor}",
        l1i=shrink(base.l1i, factor),
        l1d=shrink(base.l1d, factor),
        l2=shrink(base.l2, factor),
        l3=shrink(base.l3, l3_factor),
    )


@dataclass(frozen=True)
class SimPointConfig:
    """Clustering parameters (Table II plus SimPoint 3.2 conventions)."""

    projected_dims: int = 15
    max_k: int = 20
    fixed_length: bool = False
    coverage_pct: float = 1.0
    bic_threshold: float = 0.9
    kmeans_iterations: int = 100
    kmeans_restarts: int = 5
    seed: int = 493575226

    def __post_init__(self) -> None:
        if self.projected_dims <= 0:
            raise ConfigError("projected_dims must be positive")
        if self.max_k <= 0:
            raise ConfigError("max_k must be positive")
        if not 0.0 < self.coverage_pct <= 1.0:
            raise ConfigError("coverage_pct must be in (0, 1]")
        if not 0.0 < self.bic_threshold <= 1.0:
            raise ConfigError("bic_threshold must be in (0, 1]")

    def fingerprint(self) -> str:
        """Stable hex digest of every parameter (artifact-store keying)."""
        from repro.store.fingerprint import config_fingerprint

        return config_fingerprint(self)


def simpoint_defaults() -> SimPointConfig:
    """The paper's Table II settings (-dim 15, -maxK 20, coverage 100%)."""
    return SimPointConfig()
