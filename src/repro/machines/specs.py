"""Built-in machine specifications.

Machines are declared as plain, TOML-like dicts (see
:mod:`repro.machines.registry` for the schema) and validated into
:class:`~repro.config.MachineConfig` instances on lookup.  The two
``table1-*`` entries reproduce the paper's Table I exactly; the rest are
the cross-architecture sweep targets: core-count, cache-geometry, DRAM
bandwidth-tier, and hierarchy-backend variations the transfer experiment
(section VI-A3 / Fig. 6) is swept across.

A spec may name another spec in ``base``; its own keys are then deep-merged
on top, so variants stay one-line diffs against their parent.
"""

from __future__ import annotations

#: Named DRAM bandwidth tiers (GB/s per socket).  Table I's machine uses
#: the ddr3-1066 figure; the other tiers let sweep machines vary the
#: bandwidth wall without touching latency.
DRAM_TIERS: dict[str, float] = {
    "ddr3-1066": 8.0,
    "ddr3-1333": 10.6,
    "ddr3-1866": 14.9,
    "ddr4-2400": 19.2,
}

#: Named interconnect (fabric) bandwidth tiers (GB/s), bounding the
#: cross-complex / cross-socket line traffic of topology machines the way
#: :data:`DRAM_TIERS` bounds memory traffic.  Figures are in the range of
#: first/second-generation chiplet fabrics and a QPI-class socket link.
FABRIC_TIERS: dict[str, float] = {
    "fabric-gen1": 42.0,
    "fabric-gen2": 50.0,
    "socket-qpi": 19.2,
}

#: The built-in machine registry contents, keyed by machine name.
MACHINE_SPECS: dict[str, dict] = {
    "table1-8core": {
        "description": "Paper Table I: one socket of 8 cores",
        "sockets": 1,
        "cores_per_socket": 8,
        "core": {
            "frequency_ghz": 2.66,
            "dispatch_width": 4,
            "rob_entries": 128,
            "branch_miss_penalty": 8,
            "max_outstanding_misses": 4,
        },
        "caches": {
            "l1i": {"kb": 32, "ways": 4, "latency": 4},
            "l1d": {"kb": 32, "ways": 8, "latency": 4},
            "l2": {"kb": 256, "ways": 8, "latency": 8},
            "l3": {"kb": 8192, "ways": 16, "latency": 30},
        },
        "dram": {"latency_ns": 65.0, "tier": "ddr3-1066"},
        "hierarchy": "inclusive",
    },
    "table1-16core": {
        "description": "Two sockets of the Table I part (16 cores)",
        "base": "table1-8core",
        "sockets": 2,
    },
    "table1-32core": {
        "description": "Paper Table I: four sockets, 32 cores",
        "base": "table1-8core",
        "sockets": 4,
    },
    "table1-8core-noninclusive": {
        "description": "8-core Table I part with a non-inclusive L3",
        "base": "table1-8core",
        "hierarchy": "noninclusive",
    },
    "table1-8core-prefetch": {
        "description": "8-core Table I part with next-line L2 prefetching",
        "base": "table1-8core",
        "hierarchy": "prefetch-nl",
    },
    "bigl3-8core": {
        "description": "8 cores with a doubled, slower L3 and faster DRAM",
        "base": "table1-8core",
        "caches": {"l3": {"kb": 16384, "ways": 16, "latency": 38}},
        "dram": {"latency_ns": 65.0, "tier": "ddr3-1866"},
    },
    "lowbw-32core": {
        "description": "32 cores starved to the ddr3-1066 bandwidth tier",
        "base": "table1-32core",
        "dram": {"latency_ns": 80.0, "tier": "ddr3-1066"},
    },
    "epyc-4x8": {
        "description": "EPYC-like chiplet part: 4 complexes of 8 cores, "
                       "sliced L3 behind a distributed directory",
        "base": "table1-8core",
        "cores_per_socket": 32,
        "caches": {"l3": {"kb": 32768, "ways": 16, "latency": 34}},
        "dram": {"latency_ns": 75.0, "tier": "ddr4-2400"},
        "hierarchy": "complex",
        "topology": {
            "cores_per_complex": [8, 8, 8, 8],
            "cross_complex_extra_cycles": 40,
            "interconnect": {"tier": "fabric-gen1"},
        },
    },
    "biglittle-6core": {
        "description": "big.LITTLE-style part: a 4-core and a 2-core "
                       "complex sharing one socket",
        "base": "table1-8core",
        "cores_per_socket": 6,
        "hierarchy": "complex",
        "topology": {
            "cores_per_complex": [4, 2],
            "cross_complex_extra_cycles": 30,
            "interconnect": {"bandwidth_gbps": 25.0},
        },
    },
}
