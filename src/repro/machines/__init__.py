"""Named, data-driven machine registry (the cross-architecture axis).

Machines are declared as plain dict specs (:mod:`repro.machines.specs`),
validated into frozen :class:`~repro.config.MachineConfig` objects
(:mod:`repro.machines.registry`), fingerprinted for the artifact store,
and listable from the CLI (``repro machines``).  The sweep subsystem
(``repro sweep``) iterates these names.
"""

from repro.machines.registry import (
    build_machine,
    get_machine,
    machine_names,
    machine_summary,
    register_machine,
    resolved_spec,
    unregister_machine,
)
from repro.machines.specs import DRAM_TIERS, FABRIC_TIERS, MACHINE_SPECS

__all__ = [
    "DRAM_TIERS",
    "FABRIC_TIERS",
    "MACHINE_SPECS",
    "build_machine",
    "get_machine",
    "machine_names",
    "machine_summary",
    "register_machine",
    "resolved_spec",
    "unregister_machine",
]
