"""The named, data-driven machine registry.

A *machine spec* is a plain dict (the built-ins live in
:mod:`repro.machines.specs`; callers may add their own with
:func:`register_machine`)::

    {
        "description": "...",            # optional, shown by `repro machines`
        "base": "table1-8core",          # optional: deep-merge onto another spec
        "sockets": 1,
        "cores_per_socket": 8,
        "core": {"frequency_ghz": 2.66, "dispatch_width": 4, ...},
        "caches": {
            "l1i": {"kb": 32, "ways": 4, "latency": 4},
            "l1d": {"kb": 32, "ways": 8, "latency": 4},
            "l2":  {"kb": 256, "ways": 8, "latency": 8},
            "l3":  {"kb": 8192, "ways": 16, "latency": 30},
        },
        "dram": {"latency_ns": 65.0, "tier": "ddr3-1066"},   # or bandwidth_gbps
        "hierarchy": "inclusive",        # a repro.mem.backends name
        "topology": {                    # optional: core-complex structure
            "cores_per_complex": [8, 8, 8, 8],
            "cross_complex_extra_cycles": 40,
            "interconnect": {"tier": "if-gen1"},   # or bandwidth_gbps
        },
    }

:func:`build_machine` validates a spec — unknown keys, missing levels, bad
tiers, and unknown hierarchy backends are all :class:`ConfigError`s, not
silent defaults — and returns a frozen
:class:`~repro.config.MachineConfig`, which carries its own
:meth:`~repro.config.MachineConfig.fingerprint` for artifact-store keying.
"""

from __future__ import annotations

import copy

from repro.config import (
    CacheConfig,
    CoreConfig,
    MachineConfig,
    MemConfig,
    TopologyConfig,
)
from repro.errors import ConfigError
from repro.machines.specs import DRAM_TIERS, FABRIC_TIERS, MACHINE_SPECS

_TOP_KEYS = frozenset({
    "description", "base", "sockets", "cores_per_socket", "core", "caches",
    "dram", "hierarchy", "barrier_hop_cycles", "remote_socket_extra_cycles",
    "topology",
})
_CORE_KEYS = frozenset({
    "frequency_ghz", "dispatch_width", "rob_entries", "branch_miss_penalty",
    "max_outstanding_misses",
})
_CACHE_LEVELS = ("l1i", "l1d", "l2", "l3")
_CACHE_KEYS = frozenset({"kb", "ways", "latency", "line_bytes"})
_DRAM_KEYS = frozenset({"latency_ns", "tier", "bandwidth_gbps"})
_TOPOLOGY_KEYS = frozenset({
    "cores_per_complex", "cross_complex_extra_cycles", "interconnect",
})
_INTERCONNECT_KEYS = frozenset({"tier", "bandwidth_gbps"})

#: Runtime-registered specs, layered over the built-ins.
_RUNTIME_SPECS: dict[str, dict] = {}

#: Validated-config cache (specs are immutable once registered).
_CONFIG_CACHE: dict[str, MachineConfig] = {}


def _check_keys(name: str, section: str, spec: dict, allowed: frozenset) -> None:
    """Reject unknown keys so typos fail loudly instead of being ignored."""
    unknown = sorted(set(spec) - allowed)
    if unknown:
        raise ConfigError(
            f"machine {name!r}: unknown {section} key(s) {unknown}; "
            f"allowed: {sorted(allowed)}"
        )


#: Sections that replace wholesale instead of deep-merging: ``dram`` (top
#: level) and ``topology.interconnect`` hold mutually-exclusive keys
#: (``tier`` vs ``bandwidth_gbps``), so merging an override into an
#: inherited tier would make every bandwidth override ambiguous.
_REPLACE_SECTIONS = frozenset({"dram", "interconnect"})


def _merge(base: dict, override: dict) -> dict:
    """Deep-merge ``override`` onto ``base`` (dicts recurse, scalars replace)."""
    merged = dict(base)
    for key, value in override.items():
        if (
            key not in _REPLACE_SECTIONS
            and isinstance(value, dict)
            and isinstance(merged.get(key), dict)
        ):
            merged[key] = _merge(merged[key], value)
        else:
            merged[key] = value
    return merged


def _specs() -> dict[str, dict]:
    """All known specs: built-ins plus runtime registrations."""
    return {**MACHINE_SPECS, **_RUNTIME_SPECS}


def _resolve_base(name: str, spec: dict, seen: tuple[str, ...] = ()) -> dict:
    """Flatten a spec's ``base`` chain into one merged dict."""
    if "base" not in spec:
        return dict(spec)
    base_name = spec["base"]
    if base_name in seen:
        raise ConfigError(
            f"machine {name!r}: circular base chain {seen + (base_name,)}"
        )
    specs = _specs()
    if base_name not in specs:
        raise ConfigError(
            f"machine {name!r}: unknown base {base_name!r}; "
            f"known machines: {sorted(specs)}"
        )
    base = _resolve_base(base_name, specs[base_name], seen + (base_name,))
    merged = _merge(base, {k: v for k, v in spec.items() if k != "base"})
    return merged


def _build_cache(name: str, level: str, spec: object) -> CacheConfig:
    """Validate one cache-level sub-spec into a :class:`CacheConfig`."""
    if not isinstance(spec, dict):
        raise ConfigError(f"machine {name!r}: {level} spec must be a dict")
    _check_keys(name, level, spec, _CACHE_KEYS)
    for key in ("kb", "ways", "latency"):
        if key not in spec:
            raise ConfigError(f"machine {name!r}: {level} spec missing {key!r}")
    return CacheConfig(
        size_bytes=int(spec["kb"] * 1024),
        associativity=int(spec["ways"]),
        latency_cycles=int(spec["latency"]),
        **({"line_bytes": int(spec["line_bytes"])} if "line_bytes" in spec else {}),
    )


def _build_dram(name: str, spec: object) -> MemConfig:
    """Validate the ``dram`` section (latency plus a tier or explicit GB/s)."""
    if not isinstance(spec, dict):
        raise ConfigError(f"machine {name!r}: dram spec must be a dict")
    _check_keys(name, "dram", spec, _DRAM_KEYS)
    if ("tier" in spec) == ("bandwidth_gbps" in spec):
        raise ConfigError(
            f"machine {name!r}: dram spec needs exactly one of 'tier' "
            f"or 'bandwidth_gbps'"
        )
    if "tier" in spec:
        tier = spec["tier"]
        if tier not in DRAM_TIERS:
            raise ConfigError(
                f"machine {name!r}: unknown DRAM tier {tier!r}; "
                f"known tiers: {sorted(DRAM_TIERS)}"
            )
        bandwidth = DRAM_TIERS[tier]
    else:
        bandwidth = float(spec["bandwidth_gbps"])
    return MemConfig(
        latency_ns=float(spec.get("latency_ns", 65.0)),
        bandwidth_gbps_per_socket=bandwidth,
    )


def _build_topology(name: str, spec: object) -> TopologyConfig:
    """Validate the optional ``topology`` section of a machine spec."""
    if not isinstance(spec, dict):
        raise ConfigError(f"machine {name!r}: topology spec must be a dict")
    _check_keys(name, "topology", spec, _TOPOLOGY_KEYS)
    kwargs: dict = {}
    if "cores_per_complex" in spec:
        sizes = spec["cores_per_complex"]
        if not isinstance(sizes, (list, tuple)):
            raise ConfigError(
                f"machine {name!r}: topology cores_per_complex must be a "
                f"list of core counts"
            )
        kwargs["cores_per_complex"] = tuple(int(n) for n in sizes)
    if "cross_complex_extra_cycles" in spec:
        kwargs["cross_complex_extra_cycles"] = int(
            spec["cross_complex_extra_cycles"]
        )
    if "interconnect" in spec:
        fabric = spec["interconnect"]
        if not isinstance(fabric, dict):
            raise ConfigError(
                f"machine {name!r}: topology interconnect spec must be a dict"
            )
        _check_keys(name, "topology.interconnect", fabric, _INTERCONNECT_KEYS)
        if ("tier" in fabric) == ("bandwidth_gbps" in fabric):
            raise ConfigError(
                f"machine {name!r}: topology.interconnect spec needs exactly "
                f"one of 'tier' or 'bandwidth_gbps'"
            )
        if "tier" in fabric:
            tier = fabric["tier"]
            if tier not in FABRIC_TIERS:
                raise ConfigError(
                    f"machine {name!r}: unknown fabric tier {tier!r}; "
                    f"known tiers: {sorted(FABRIC_TIERS)}"
                )
            kwargs["interconnect_gbps"] = FABRIC_TIERS[tier]
        else:
            kwargs["interconnect_gbps"] = float(fabric["bandwidth_gbps"])
    return TopologyConfig(**kwargs)


def build_machine(name: str, spec: dict) -> MachineConfig:
    """Validate one spec dict into a :class:`MachineConfig`.

    Args:
        name: The machine's registry name (becomes ``MachineConfig.name``).
        spec: A spec dict as documented in the module docstring.  A
            ``base`` key is resolved against the registry first.

    Returns:
        The frozen, validated machine configuration.

    Raises:
        ConfigError: On unknown keys, missing sections, bad tiers, or an
            unknown hierarchy backend.
    """
    if not isinstance(spec, dict):
        raise ConfigError(f"machine {name!r}: spec must be a dict")
    _check_keys(name, "machine", spec, _TOP_KEYS)
    merged = _resolve_base(name, spec)
    for key in ("sockets", "cores_per_socket", "caches", "dram"):
        if key not in merged:
            raise ConfigError(f"machine {name!r}: spec missing {key!r}")
    core_spec = merged.get("core", {})
    if not isinstance(core_spec, dict):
        raise ConfigError(f"machine {name!r}: core spec must be a dict")
    _check_keys(name, "core", core_spec, _CORE_KEYS)
    caches = merged["caches"]
    if not isinstance(caches, dict):
        raise ConfigError(f"machine {name!r}: caches spec must be a dict")
    _check_keys(name, "caches", caches, frozenset(_CACHE_LEVELS))
    for level in _CACHE_LEVELS:
        if level not in caches:
            raise ConfigError(f"machine {name!r}: caches spec missing {level!r}")
    hierarchy = merged.get("hierarchy", "inclusive")
    from repro.mem.backends import HIERARCHY_BACKENDS

    if hierarchy not in HIERARCHY_BACKENDS:
        raise ConfigError(
            f"machine {name!r}: unknown hierarchy backend {hierarchy!r}; "
            f"known backends: {sorted(HIERARCHY_BACKENDS)}"
        )
    extra = {}
    for key in ("barrier_hop_cycles", "remote_socket_extra_cycles"):
        if key in merged:
            extra[key] = int(merged[key])
    if "topology" in merged:
        extra["topology"] = _build_topology(name, merged["topology"])
    return MachineConfig(
        name=name,
        num_sockets=int(merged["sockets"]),
        cores_per_socket=int(merged["cores_per_socket"]),
        core=CoreConfig(**core_spec),
        l1i=_build_cache(name, "l1i", caches["l1i"]),
        l1d=_build_cache(name, "l1d", caches["l1d"]),
        l2=_build_cache(name, "l2", caches["l2"]),
        l3=_build_cache(name, "l3", caches["l3"]),
        mem=_build_dram(name, merged["dram"]),
        hierarchy=hierarchy,
        **extra,
    )


def register_machine(name: str, spec: dict) -> MachineConfig:
    """Add a machine spec to the registry at runtime.

    The spec is validated eagerly, so a bad registration fails at the
    registration site, not at first use.  Runtime registrations are
    per-process: the parallel experiment runner's worker processes only
    see the built-in specs, so sweeps over custom machines should run
    with ``workers <= 1`` (or the spec should be added to
    :data:`~repro.machines.specs.MACHINE_SPECS` in source).

    Args:
        name: New, unique machine name.
        spec: Spec dict (may ``base`` onto any registered machine).

    Returns:
        The validated configuration.

    Raises:
        ConfigError: If the name is already registered or the spec is bad.
    """
    if name in _specs():
        raise ConfigError(f"machine {name!r} is already registered")
    config = build_machine(name, spec)
    _RUNTIME_SPECS[name] = copy.deepcopy(spec)
    _CONFIG_CACHE[name] = config
    return config


def unregister_machine(name: str) -> None:
    """Remove a runtime-registered machine (built-ins cannot be removed).

    Raises:
        ConfigError: If the machine is built in, or another registered
            spec still inherits from it (removing it would leave the
            registry unresolvable).
    """
    if name in MACHINE_SPECS:
        raise ConfigError(f"machine {name!r} is built in and cannot be removed")
    dependents = sorted(
        dep for dep, spec in _RUNTIME_SPECS.items()
        if dep != name and spec.get("base") == name
    )
    if dependents:
        raise ConfigError(
            f"machine {name!r} is the base of {dependents}; "
            f"unregister those first"
        )
    _RUNTIME_SPECS.pop(name, None)
    _CONFIG_CACHE.pop(name, None)


def get_machine(name: str) -> MachineConfig:
    """Look a machine up by registry name.

    Args:
        name: A name from :func:`machine_names`.

    Returns:
        The validated (cached) configuration.

    Raises:
        ConfigError: For names not in the registry.
    """
    if name not in _CONFIG_CACHE:
        specs = _specs()
        if name not in specs:
            raise ConfigError(
                f"unknown machine {name!r}; known machines: {sorted(specs)}"
            )
        _CONFIG_CACHE[name] = build_machine(name, specs[name])
    return _CONFIG_CACHE[name]


def machine_names() -> tuple[str, ...]:
    """All registered machine names, sorted."""
    return tuple(sorted(_specs()))


def resolved_spec(name: str) -> dict:
    """The fully resolved, validated spec dict of one machine.

    The ``base`` inheritance chain is flattened (deep-merged, with the
    wholesale-replace sections handled as in :func:`build_machine`) and
    the result is validated before being returned, so what you see is
    exactly what :func:`get_machine` builds from.  Drives
    ``repro machines --show``.

    Args:
        name: A name from :func:`machine_names`.

    Returns:
        A deep copy of the merged spec (safe to mutate).

    Raises:
        ConfigError: For unknown names or invalid specs.
    """
    specs = _specs()
    if name not in specs:
        raise ConfigError(
            f"unknown machine {name!r}; known machines: {sorted(specs)}"
        )
    get_machine(name)  # validate via the cache before exposing the spec
    return copy.deepcopy(_resolve_base(name, specs[name]))


def machine_summary() -> list[dict]:
    """One summary row per registered machine (drives ``repro machines``).

    Returns:
        Dicts with ``name``, ``cores``, ``sockets``, ``topology``, ``l3``,
        ``dram``, ``hierarchy``, ``fingerprint`` and ``description`` keys.
    """
    rows = []
    for name in machine_names():
        cfg = get_machine(name)
        spec = _resolve_base(name, _specs()[name])
        rows.append({
            "name": name,
            "cores": cfg.num_cores,
            "sockets": cfg.num_sockets,
            "topology": cfg.topology_label(),
            "l3": f"{cfg.l3.size_bytes // (1024 * 1024)}MB/{cfg.l3.associativity}w",
            "dram": f"{cfg.mem.bandwidth_gbps_per_socket:g}GB/s",
            "hierarchy": cfg.hierarchy,
            "fingerprint": cfg.fingerprint(),
            "description": spec.get("description", ""),
        })
    return rows
