"""Store-backed trace corpus: an indexed scenario farm over ``.rpt`` files.

A corpus is a named set of recorded traces living in the artifact store
(kind ``"traces"``, the same content-keyed slots ``store_trace`` uses)
plus a *manifest* — a pickled index artifact (kind ``"corpus"``) listing
every entry's workload coordinates, content fingerprint, and store key.
Batch-recording fuzz seed ranges turns the seeded
:class:`~repro.trace.generators.ScenarioFuzzer` into a corpus of
scenarios that `repro trace corpus verify` sweeps with the
differential-conformance battery: every entry × every hierarchy backend,
unsharded replay vs. sharded-merged replay, digests compared exactly.

Integrity and GC interplay:

* The manifest and the trace files are ordinary store artifacts — the
  PR 5 janitor may evict them under TTL/quota pressure, and every hit
  touches mtime (LRU).  A manifest that exists but fails its checksum
  (torn write, bit rot) is surfaced as a **loud**
  :class:`~repro.errors.TraceFormatError`, never an empty corpus: the
  store reports corrupt-pickle as a miss, so ``has() and get() is None``
  is the tell.
* Resolving an entry re-validates the stored trace end to end
  (:func:`~repro.trace.capture.validate_trace`); a GC-evicted or
  corrupted trace raises loudly instead of verifying garbage.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import shutil
import tempfile
from dataclasses import dataclass

from repro.errors import ConfigError, TraceFormatError
from repro.trace.capture import (
    TraceReader,
    record_trace,
    trace_store_key,
    validate_trace,
)

#: Manifest schema version; bumped on any layout change (old manifests
#: become unreachable rather than misread).
CORPUS_FORMAT = 1

#: Default shard count of the conformance sweep's sharded replay leg.
DEFAULT_VERIFY_SHARDS = 3


def full_run_digest(full) -> str:
    """Deterministic digest of a detailed-simulation result.

    A 16-hex-digit SHA-256 over the canonical JSON form of
    :meth:`~repro.sim.machine.FullRunResult.to_state` — order-sensitive
    and exact in every float, so two results digest equal iff they are
    bit-identical.  The conformance sweep compares this *per hierarchy
    backend*: functional profiles are backend-independent, but detailed
    simulation is where the backends (and any merge bug that perturbs
    warmup state) actually diverge.

    Args:
        full: A :class:`~repro.sim.machine.FullRunResult`.

    Returns:
        The digest string.
    """
    raw = json.dumps(
        full.to_state(), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(raw).hexdigest()[:16]


@dataclass(frozen=True)
class CorpusEntry:
    """One indexed trace of a corpus.

    Attributes:
        workload: Recorded workload name (e.g. ``"fuzz-11"``).
        num_threads: Recorded thread count.
        scale: Recorded scale factor.
        fingerprint: Content fingerprint of the trace file
            (:func:`~repro.trace.capture.trace_fingerprint`).
        store_key: Artifact-store key of the trace file (kind
            ``"traces"``).
        code_fingerprint: The package code fingerprint the trace was
            recorded under.
        num_regions: Recorded region count.
    """

    workload: str
    num_threads: int
    scale: float
    fingerprint: str
    store_key: str
    code_fingerprint: str
    num_regions: int

    @property
    def label(self) -> str:
        """Human identity (``workload/threads``)."""
        return f"{self.workload}/{self.num_threads}t"

    def to_dict(self) -> dict:
        """Plain-dict form (manifest payload)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, state: dict) -> CorpusEntry:
        """Rebuild an entry from its :meth:`to_dict` form."""
        return cls(**state)

    @classmethod
    def from_trace(cls, path: str | os.PathLike) -> CorpusEntry:
        """Describe a trace file as a corpus entry.

        Args:
            path: The ``.rpt`` file.

        Returns:
            The entry (store key derived from the trace's own metadata,
            exactly as :func:`~repro.trace.capture.store_trace` keys it).
        """
        reader = TraceReader(path)
        code = reader.meta.get("code_fingerprint", "")
        return cls(
            workload=reader.meta["workload"],
            num_threads=reader.num_threads,
            scale=reader.meta["scale"],
            fingerprint=reader.fingerprint(),
            store_key=trace_store_key(
                reader.meta["workload"], reader.num_threads,
                reader.meta["scale"], code=code,
            ),
            code_fingerprint=code,
            num_regions=reader.num_regions,
        )


class TraceCorpus:
    """A named, store-backed corpus of recorded traces.

    Parameters
    ----------
    store:
        The :class:`~repro.store.ArtifactStore` holding the manifest and
        the trace files.
    name:
        Corpus name; distinct names are independent indexes in the same
        store.
    """

    def __init__(self, store, name: str = "default") -> None:
        if store is None or not store.enabled:
            raise ConfigError(
                "a trace corpus needs an enabled artifact store "
                "(set REPRO_STORE_DIR or pass an explicit store root)"
            )
        self.store = store
        self.name = name

    @property
    def manifest_key(self) -> str:
        """Store key of this corpus's manifest artifact."""
        from repro.store import ArtifactStore

        return ArtifactStore.derive_key(
            corpus=self.name, format=CORPUS_FORMAT
        )

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------

    def entries(self) -> list[CorpusEntry]:
        """Load the corpus index.

        Returns:
            The indexed entries, in recording order (empty when no
            manifest has been written yet).

        Raises:
            TraceFormatError: When a manifest artifact exists but fails
                its integrity check (torn write, corruption) — a corrupt
                index must never read as an empty corpus.
        """
        exists = self.store.has("corpus", self.manifest_key)
        manifest = self.store.get("corpus", self.manifest_key)
        if manifest is None:
            if exists:
                raise TraceFormatError(
                    f"corpus {self.name!r}: manifest artifact is corrupt "
                    f"(checksum failure) — the store dropped it; "
                    f"re-record the corpus with `repro trace corpus "
                    f"record`"
                )
            return []
        return [CorpusEntry.from_dict(e) for e in manifest["entries"]]

    def _save(self, entries: list[CorpusEntry]) -> None:
        """Write the manifest artifact."""
        self.store.put("corpus", self.manifest_key, {
            "format": CORPUS_FORMAT,
            "name": self.name,
            "entries": [e.to_dict() for e in entries],
        })

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def add_trace(self, path: str | os.PathLike) -> CorpusEntry:
        """Store a trace file and index it (content-deduplicated).

        Args:
            path: A recorded ``.rpt`` file.

        Returns:
            The (possibly pre-existing) entry for the trace's content.
        """
        from repro.trace.capture import store_trace

        entry = CorpusEntry.from_trace(path)
        entries = self.entries()
        for existing in entries:
            if existing.fingerprint == entry.fingerprint:
                return existing
        store_trace(self.store, path)
        self._save(entries + [entry])
        return entry

    def record_fuzz_range(
        self, seeds, num_threads: int, scale: float
    ) -> list[CorpusEntry]:
        """Batch-record fuzzer scenarios into the corpus.

        Each seed's ``fuzz-<seed>`` scenario is generated, recorded to a
        temporary file, stored content-keyed, and indexed.  Recording is
        deterministic per ``(seed, num_threads, scale, code)``, so
        re-recording an already-indexed seed deduplicates.

        Args:
            seeds: Iterable of fuzzer seeds (validated by
                :class:`~repro.trace.generators.ScenarioFuzzer`).
            num_threads: Thread count to record at.
            scale: Scale factor to record at.

        Returns:
            One entry per seed, in seed order.
        """
        from repro.workloads import get_workload

        recorded: list[CorpusEntry] = []
        workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-corpus-"))
        try:
            for seed in seeds:
                workload = get_workload(f"fuzz-{seed}", num_threads, scale)
                path = record_trace(workload, workdir / f"fuzz-{seed}.rpt")
                recorded.append(self.add_trace(path))
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        return recorded

    # ------------------------------------------------------------------
    # Resolution + conformance
    # ------------------------------------------------------------------

    def resolve(self, entry: CorpusEntry) -> pathlib.Path:
        """The validated on-disk path of an entry's trace.

        Args:
            entry: An indexed entry.

        Returns:
            The stored trace path (fully CRC-validated).

        Raises:
            TraceFormatError: When the trace is missing from the store
                (GC-evicted) or failed validation (corrupted) — the
                caller must re-record, never merge garbage.
        """
        path = self.store.get_file(
            "traces", entry.store_key, validate=validate_trace
        )
        if path is None:
            raise TraceFormatError(
                f"corpus {self.name!r}: trace for {entry.label} "
                f"({entry.fingerprint}) is missing or corrupt in the "
                f"store — it may have been GC-evicted; re-record it "
                f"(`repro trace corpus record`)"
            )
        return path

    def verify(
        self,
        num_shards: int = DEFAULT_VERIFY_SHARDS,
        workers: int = 0,
        backends: tuple[str, ...] | None = None,
        retry=None,
        report=None,
    ) -> list[dict]:
        """Corpus-wide differential-conformance sweep.

        For every entry × hierarchy backend, one fan-out task replays the
        stored trace twice — unsharded
        (:class:`~repro.workloads.replay.ReplayWorkload`) and through the
        sharded split-and-merge path
        (:class:`~repro.trace.shard.ShardedReplay`, serial inside the
        task) — and compares both the functional profile digest and the
        detailed full-run digest (:func:`full_run_digest`) exactly.  The
        profile leg checks the merge itself (backend-independent); the
        full-run leg is what makes the backend axis bite, since the
        hierarchy backends only diverge in detailed simulation.  Tasks
        run in parallel under the fault-tolerant fan-out; a digest
        mismatch is a *result*, not an exception, so one non-conforming
        entry never hides the rest of the sweep.

        Args:
            num_shards: Shard count of the sharded leg (capped per entry
                at its region count).
            workers: Process count (<= 1 = serial).
            backends: Hierarchy backends to sweep (default: all
                registered, sorted).
            retry: Optional retry-policy override.
            report: Optional :class:`~repro.experiments.common.RunReport`
                to accumulate into.

        Returns:
            One dict per (entry, backend): ``label``, ``backend``,
            ``fingerprint``, ``unsharded``/``sharded`` profile digests,
            ``unsharded_full``/``sharded_full`` detailed-run digests,
            and ``ok`` (both pairs equal).

        Raises:
            TraceFormatError: When the manifest or any entry's trace is
                missing/corrupt.
            RetryExhaustedError: When a task kept failing through its
                retry budget.
        """
        from repro.experiments.common import (
            FanoutTask,
            FaultTolerantFanout,
            RetryPolicy,
            RunReport,
        )
        from repro.mem.backends import backend_names
        from repro.store import ArtifactStore

        if backends is None:
            backends = tuple(sorted(backend_names()))
        entries = self.entries()
        tasks = []
        for entry in entries:
            path = self.resolve(entry)
            for backend in backends:
                label = f"{entry.label}@{backend}"
                tasks.append(FanoutTask(
                    key=ArtifactStore.derive_key(
                        verify=entry.fingerprint, backend=backend,
                        shards=num_shards, format=CORPUS_FORMAT,
                    ),
                    label=label,
                    args=(str(path), backend, entry.num_threads,
                          num_shards),
                    meta={"label": entry.label, "backend": backend,
                          "fingerprint": entry.fingerprint},
                ))
        fanout = FaultTolerantFanout(
            fn=_verify_conformance_task, workers=workers,
            retry=retry if retry is not None else RetryPolicy.from_env(),
            report=report if report is not None else RunReport(),
        )
        results = fanout.run(tasks)
        verdicts = []
        for task in tasks:
            digests = results[task.key]
            verdicts.append(dict(
                task.meta,
                unsharded=digests["unsharded"],
                sharded=digests["sharded"],
                unsharded_full=digests["unsharded_full"],
                sharded_full=digests["sharded_full"],
                ok=(digests["unsharded"] == digests["sharded"]
                    and digests["unsharded_full"] == digests["sharded_full"]),
            ))
        return verdicts


def conformance_machine(num_threads: int, backend: str):
    """The sweep's evaluation machine for a thread count and backend.

    A cache-scaled Table I machine resized to one socket of
    ``num_threads`` cores with the requested hierarchy backend — a pure
    function of its arguments, so parent and pool workers derive the
    same machine without registry round-trips.

    Args:
        num_threads: Core count (must equal the trace's thread count).
        backend: Hierarchy backend name.

    Returns:
        The :class:`~repro.config.MachineConfig`.
    """
    from repro.config import scaled, table1_8core

    return dataclasses.replace(
        scaled(table1_8core()),
        name=f"corpus-{num_threads}c-{backend}",
        num_sockets=1,
        cores_per_socket=num_threads,
        hierarchy=backend,
    )


def _verify_conformance_task(task: tuple) -> dict:
    """Pool worker: one entry × backend differential-conformance check.

    Args:
        task: ``(trace_path, backend, num_threads, num_shards
            [, attempt, timeout])``.

    Returns:
        ``{"unsharded", "sharded"}`` profile digests plus
        ``{"unsharded_full", "sharded_full"}`` detailed-run digests of
        the plain replay and of the split-shard-merge replay.
    """
    from repro.core.pipeline import BarrierPointPipeline
    from repro.experiments.common import _time_limit
    from repro.faults import maybe_inject
    from repro.profiling.profiler import profiles_digest
    from repro.trace.shard import ShardedReplay, split_trace
    from repro.workloads.replay import ReplayWorkload

    (trace_path, backend, num_threads, num_shards, *rest) = task
    attempt = rest[0] if rest else 0
    timeout = rest[1] if len(rest) > 1 else None
    label = f"verify:{pathlib.Path(trace_path).name}@{backend}"
    with _time_limit(timeout, label):
        maybe_inject("runner.task", key=label, attempt=attempt)
        machine = conformance_machine(num_threads, backend)
        pipe = BarrierPointPipeline(machine)
        replay = ReplayWorkload(trace_path)
        try:
            shards = min(num_shards, replay.num_regions)
            unsharded = profiles_digest(pipe.profile(replay))
            unsharded_full = full_run_digest(pipe.full_run(replay))
        finally:
            replay.close()
        workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-verify-"))
        try:
            shard_paths = split_trace(trace_path, workdir, num_shards=shards)
            profiles, full = ShardedReplay(
                shard_paths, machine, workers=0
            ).run(want_profiles=True, want_full=True)
            sharded = profiles_digest(profiles)
            sharded_full = full_run_digest(full)
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
    return {
        "unsharded": unsharded,
        "sharded": sharded,
        "unsharded_full": unsharded_full,
        "sharded_full": sharded_full,
    }
