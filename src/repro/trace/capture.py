"""Versioned, chunked, checksummed binary trace capture (``.rpt`` files).

A recorded program trace (RPT) snapshots the complete deterministic
memory-access trace of a workload — every region, every thread, every
block execution with its line/write reference stream — so it can be
shared, archived as a content-keyed artifact, and replayed bit-identically
through the profiler and any hierarchy backend without regenerating the
workload (see :class:`repro.workloads.replay.ReplayWorkload`).

File layout (all integers little-endian)::

    header   magic ``b"RPTRACE\\x00"`` (8) | version u16 | meta_len u32
             | meta (UTF-8 JSON, meta_len bytes) | meta_crc u32
    chunk*   tag ``b"RCHK"`` | region_index u32 | payload_len u64
             | payload_crc u32 | payload
    footer   tag ``b"REND"`` | file_crc u32 (CRC-32 of every prior byte)

There is exactly one chunk per region, holding all threads' block
executions back to back; a chunk payload is, per thread::

    n_execs u32, then per exec: bb_id u32 | count u64 | n_refs u64,
    then the thread's concatenated lines (int64) and packed write bits.

The metadata JSON carries the workload identity (name, input size, scale,
thread count), the region schedule, the static basic-block table, and the
recording package's code fingerprint.  Every chunk is CRC-checked on
read and the footer CRC covers the whole file, so truncation or bit
corruption raises :class:`~repro.errors.TraceFormatError` — never silent
garbage.  (One layering subtlety: because ``meta_crc`` immediately
follows the metadata bytes, the metadata's contribution to the running
whole-file CRC self-cancels — the CRC-32 residue property — so metadata
integrity rests on ``meta_crc`` itself while the footer CRC guards the
chunks and overall structure.  Content *identity* never relies on CRCs
at all: :func:`trace_fingerprint` is sha256-based.)  ``FORMAT_VERSION`` is bumped on any layout change; readers
reject other versions loudly (no silent migration).

Writing streams region by region and reading decodes one region at a
time (:meth:`TraceReader.region_execs` keeps a tiny LRU window), so
neither side ever materializes the full trace.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pathlib
import struct
import zlib
from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.errors import TraceFormatError
from repro.trace.program import BasicBlock

MAGIC = b"RPTRACE\x00"
#: On-disk format version; readers accept exactly this version.
FORMAT_VERSION = 1

_CHUNK_TAG = b"RCHK"
_END_TAG = b"REND"
_HEAD_FIXED = struct.Struct("<8sHI")       # magic, version, meta_len
_CRC = struct.Struct("<I")
_CHUNK_HEAD = struct.Struct("<4sIQI")      # tag, region_index, len, crc
_EXEC_HEAD = struct.Struct("<IQQ")         # bb_id, count, n_refs
_U32 = struct.Struct("<I")

#: Decoded regions kept resident per reader (bounded-memory replay).
_REGION_WINDOW = 4


def _crc32(data: bytes, value: int = 0) -> int:
    """CRC-32 helper (zlib, masked to uint32)."""
    return zlib.crc32(data, value) & 0xFFFFFFFF


def _meta_from_workload(workload) -> dict:
    """Build the metadata block recorded into a trace header."""
    from repro.store import code_fingerprint

    blocks = sorted(workload._blocks.values(), key=lambda b: b.bb_id)
    return {
        "format": "rpt",
        "version": FORMAT_VERSION,
        "workload": workload.name,
        "input_size": workload.input_size,
        "scale": workload.scale,
        "num_threads": workload.num_threads,
        "num_regions": workload.num_regions,
        "schedule": [
            [inst.phase, inst.iteration, inst.param]
            for inst in (workload.phase_of(i) for i in range(workload.num_regions))
        ],
        "blocks": [
            {
                "bb_id": b.bb_id,
                "name": b.name,
                "instructions": b.instructions,
                "mispredict_rate": b.mispredict_rate,
                "mlp": b.mlp,
                "code_lines": list(b.code_lines),
            }
            for b in blocks
        ],
        "code_fingerprint": code_fingerprint(),
    }


def _encode_region(trace) -> bytes:
    """Serialize one :class:`~repro.trace.program.RegionTrace` payload."""
    out = io.BytesIO()
    for thread in trace.threads:
        out.write(_U32.pack(len(thread.blocks)))
        lines_chunks = []
        writes_chunks = []
        for exec_ in thread.blocks:
            out.write(_EXEC_HEAD.pack(
                exec_.block.bb_id, exec_.count, int(exec_.lines.size)
            ))
            if exec_.lines.size:
                lines_chunks.append(
                    np.ascontiguousarray(exec_.lines, dtype=np.int64)
                )
                writes_chunks.append(exec_.writes)
        if lines_chunks:
            lines = (lines_chunks[0] if len(lines_chunks) == 1
                     else np.concatenate(lines_chunks))
            writes = (writes_chunks[0] if len(writes_chunks) == 1
                      else np.concatenate(writes_chunks))
            out.write(lines.tobytes())
            out.write(np.packbits(writes.astype(np.uint8)).tobytes())
    return out.getvalue()


def record_trace(workload, path: str | os.PathLike) -> pathlib.Path:
    """Snapshot a workload's complete trace into a ``.rpt`` file.

    Streams one region at a time (the workload's own region memoization
    aside, peak memory is one region), writes via a temporary file and
    an atomic rename, and returns the final path.

    Args:
        workload: Any :class:`~repro.workloads.base.Workload` (including
            fuzzer scenarios and other replays).
        path: Destination file path (conventionally ``*.rpt``).

    Returns:
        The written path.
    """
    import tempfile

    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = json.dumps(
        _meta_from_workload(workload), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    # mkstemp (not a fixed "<out>.tmp") so concurrent recorders to the
    # same destination cannot interleave writes or unlink each other's
    # in-flight file; last os.replace wins with a complete trace.
    fd, tmp = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    crc = 0
    try:
        with os.fdopen(fd, "wb") as out:
            def emit(data: bytes) -> None:
                nonlocal crc
                crc = _crc32(data, crc)
                out.write(data)

            emit(_HEAD_FIXED.pack(MAGIC, FORMAT_VERSION, len(meta)))
            emit(meta)
            emit(_CRC.pack(_crc32(meta)))
            for trace in workload.iter_regions():
                payload = _encode_region(trace)
                emit(_CHUNK_HEAD.pack(
                    _CHUNK_TAG, trace.region_index, len(payload),
                    _crc32(payload),
                ))
                emit(payload)
            out.write(_END_TAG + _CRC.pack(crc))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


class TraceReader:
    """Random-access, validating reader of one ``.rpt`` file.

    The constructor validates the header and indexes every chunk (reading
    chunk headers only — payloads are seeked over); payloads are decoded
    lazily per region with CRC validation, and a small LRU window of
    decoded regions bounds memory during sequential replay.

    No file handle is held between operations: every read opens the file
    on demand, so arbitrarily many readers (e.g. the experiment runner's
    workload memo over many traces) cost no file descriptors at rest.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = pathlib.Path(path)
        #: Retry attempt reported to the ``trace.read`` fault site.  Task
        #: runners that retry a whole replay (e.g. the sharded fan-out)
        #: set this so attempt-gated fault rules stop firing on retries.
        self.fault_attempt = 0
        with self._open() as file:
            self.meta = self._read_header(file)
            self._offsets = self._index_chunks(file)
        self._window: OrderedDict[int, list] = OrderedDict()
        self.blocks = tuple(
            BasicBlock(
                bb_id=b["bb_id"],
                name=b["name"],
                instructions=b["instructions"],
                mispredict_rate=b["mispredict_rate"],
                mlp=b["mlp"],
                code_lines=tuple(b["code_lines"]),
            )
            for b in self.meta["blocks"]
        )

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------

    def _open(self):
        """Open the trace file, translating OS errors to format errors."""
        try:
            return open(self.path, "rb")
        except OSError as exc:
            raise TraceFormatError(
                f"cannot open trace {str(self.path)!r}: {exc}; "
                f"record one with `repro trace record`"
            ) from None

    def _fail(self, detail: str) -> TraceFormatError:
        """Build a uniform, actionable format error."""
        return TraceFormatError(
            f"trace {str(self.path)!r}: {detail} — the file is not a valid "
            f"version-{FORMAT_VERSION} .rpt trace (re-record it with "
            f"`repro trace record`)"
        )

    def _read_exact(self, file, n: int, what: str) -> bytes:
        data = file.read(n)
        if len(data) != n:
            raise self._fail(f"truncated while reading {what}")
        return data

    def _read_header(self, file) -> dict:
        """Validate magic/version and decode the metadata JSON."""
        raw = self._read_exact(file, _HEAD_FIXED.size, "header")
        magic, version, meta_len = _HEAD_FIXED.unpack(raw)
        if magic != MAGIC:
            raise self._fail(f"bad magic {magic!r}")
        if version != FORMAT_VERSION:
            raise TraceFormatError(
                f"trace {str(self.path)!r}: format version {version} is not "
                f"supported (this build reads version {FORMAT_VERSION} "
                f"only); re-record the trace with this version of repro"
            )
        meta_raw = self._read_exact(file, meta_len, "metadata")
        (meta_crc,) = _CRC.unpack(
            self._read_exact(file, _CRC.size, "metadata CRC")
        )
        if _crc32(meta_raw) != meta_crc:
            raise self._fail("metadata checksum mismatch")
        try:
            meta = json.loads(meta_raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise self._fail("metadata is not valid JSON") from None
        for field in ("workload", "scale", "num_threads", "num_regions",
                      "schedule", "blocks"):
            if field not in meta:
                raise self._fail(f"metadata is missing {field!r}")
        # Internal consistency: CRCs prove the bytes are as written, not
        # that the metadata describes the chunks — cross-check so a
        # mismatched schedule is a loud error, never an IndexError later
        # or a silent truncation of trailing regions.
        if not isinstance(meta["num_regions"], int) or meta["num_regions"] < 1:
            raise self._fail(f"invalid num_regions {meta['num_regions']!r}")
        if not isinstance(meta["num_threads"], int) or meta["num_threads"] < 1:
            raise self._fail(f"invalid num_threads {meta['num_threads']!r}")
        if len(meta["schedule"]) != meta["num_regions"]:
            raise self._fail(
                f"metadata declares {meta['num_regions']} regions but the "
                f"schedule has {len(meta['schedule'])} entries"
            )
        if not meta["blocks"]:
            raise self._fail("metadata declares no basic blocks")
        return meta

    def _index_chunks(self, file) -> list[tuple[int, int, int]]:
        """Walk chunk headers, returning (offset, length, crc) per region."""
        offsets: list[tuple[int, int, int]] = []
        for expected_region in range(self.meta["num_regions"]):
            raw = self._read_exact(file, _CHUNK_HEAD.size, "chunk header")
            tag, region_index, length, crc = _CHUNK_HEAD.unpack(raw)
            if tag != _CHUNK_TAG:
                raise self._fail(f"bad chunk tag {tag!r}")
            if region_index != expected_region:
                raise self._fail(
                    f"chunk for region {region_index} where region "
                    f"{expected_region} was expected"
                )
            offsets.append((file.tell(), length, crc))
            file.seek(length, os.SEEK_CUR)
        trailer = self._read_exact(file, len(_END_TAG) + _CRC.size, "footer")
        if trailer[: len(_END_TAG)] != _END_TAG:
            raise self._fail("missing end-of-trace footer")
        if file.read(1):
            raise self._fail("trailing bytes after footer")
        return offsets

    # ------------------------------------------------------------------
    # Public accessors
    # ------------------------------------------------------------------

    @property
    def num_regions(self) -> int:
        """Recorded region count."""
        return int(self.meta["num_regions"])

    @property
    def num_threads(self) -> int:
        """Recorded thread count."""
        return int(self.meta["num_threads"])

    def verify(self) -> int:
        """CRC-check every chunk plus the whole-file checksum, in one pass.

        Streams the file once in record order, accumulating the
        whole-file CRC over the same bytes while validating each chunk
        payload against its header CRC — validation I/O is one read of
        the file, not two.

        Returns:
            The number of chunks verified.

        Raises:
            TraceFormatError: On any checksum mismatch.
        """
        with self._open() as file:
            crc = 0
            pos = 0
            for region_index, (offset, length, chunk_crc) in enumerate(
                self._offsets
            ):
                # Header/meta bytes before the first payload, chunk
                # headers between payloads.
                lead = self._read_exact(file, offset - pos, "chunk header")
                crc = _crc32(lead, crc)
                payload = self._read_exact(
                    file, length, f"region {region_index} payload"
                )
                if _crc32(payload) != chunk_crc:
                    raise self._fail(
                        f"region {region_index} chunk checksum mismatch"
                    )
                crc = _crc32(payload, crc)
                pos = offset + length
            trailer = self._read_exact(
                file, len(_END_TAG) + _CRC.size, "footer"
            )
            if trailer[: len(_END_TAG)] != _END_TAG:
                raise self._fail("missing end-of-trace footer")
            (file_crc,) = _CRC.unpack(trailer[len(_END_TAG):])
            if crc != file_crc:
                raise self._fail("whole-file checksum mismatch")
        return self.num_regions

    def file_crc(self) -> int:
        """The recorded whole-file CRC-32 (from the footer, not recomputed)."""
        return read_file_crc(self.path)

    def fingerprint(self) -> str:
        """Content fingerprint of the trace file (sha256-based).

        Delegates to :func:`trace_fingerprint`, which caches per
        ``(path, size, mtime)`` — so repeated key derivations over the
        same unchanged file hash it once.
        """
        return trace_fingerprint(self.path)

    def _read_payload(self, region_index: int) -> bytes:
        """Read and CRC-validate one region's raw payload bytes."""
        from repro.faults import maybe_inject

        maybe_inject(
            "trace.read",
            key=f"{self.path}#{region_index}",
            attempt=self.fault_attempt,
        )
        offset, length, crc = self._offsets[region_index]
        with self._open() as file:
            file.seek(offset)
            payload = self._read_exact(
                file, length, f"region {region_index} payload"
            )
        if _crc32(payload) != crc:
            raise self._fail(f"region {region_index} chunk checksum mismatch")
        return payload

    def region_execs(self, region_index: int) -> list[list[tuple]]:
        """Decode one region: per thread, ``(bb_id, count, lines, writes)``.

        Decoded regions are cached in a small LRU window so the per-thread
        calls of a replay touch the disk once per region while sequential
        iteration stays bounded-memory.
        """
        cached = self._window.get(region_index)
        if cached is not None:
            self._window.move_to_end(region_index)
            return cached
        payload = self._read_payload(region_index)
        threads: list[list[tuple]] = []
        view = memoryview(payload)
        pos = 0
        try:
            for _tid in range(self.num_threads):
                (n_execs,) = _U32.unpack_from(view, pos)
                pos += _U32.size
                heads = []
                total_refs = 0
                for _ in range(n_execs):
                    bb_id, count, n_refs = _EXEC_HEAD.unpack_from(view, pos)
                    pos += _EXEC_HEAD.size
                    heads.append((bb_id, count, n_refs))
                    total_refs += n_refs
                lines = np.frombuffer(
                    view, dtype="<i8", count=total_refs, offset=pos
                ).astype(np.int64, copy=False)
                pos += total_refs * 8
                packed_len = (total_refs + 7) // 8
                writes = np.unpackbits(
                    np.frombuffer(view, dtype=np.uint8, count=packed_len,
                                  offset=pos),
                    count=total_refs,
                ).astype(bool)
                pos += packed_len
                execs = []
                cursor = 0
                for bb_id, count, n_refs in heads:
                    execs.append((
                        bb_id, count,
                        lines[cursor:cursor + n_refs],
                        writes[cursor:cursor + n_refs],
                    ))
                    cursor += n_refs
                threads.append(execs)
        except (struct.error, ValueError):
            raise self._fail(
                f"region {region_index} payload is malformed"
            ) from None
        if pos != len(payload):
            raise self._fail(
                f"region {region_index} payload has {len(payload) - pos} "
                f"unconsumed bytes"
            )
        self._window[region_index] = threads
        while len(self._window) > _REGION_WINDOW:
            self._window.popitem(last=False)
        return threads

    def iter_chunk_info(self) -> Iterator[tuple[int, int, int]]:
        """Yield ``(region_index, payload_bytes, crc)`` per chunk."""
        for region_index, (_, length, crc) in enumerate(self._offsets):
            yield region_index, length, crc

    def close(self) -> None:
        """Release resources (a no-op: no handle is held between reads).

        Kept so readers can be used with ``with`` and so callers that
        managed the handle-holding implementation keep working.
        """

    def __enter__(self) -> TraceReader:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def validate_trace(path: str | os.PathLike) -> TraceReader:
    """Open and fully verify a trace (header, every chunk CRC, file CRC).

    Args:
        path: The ``.rpt`` file.

    Returns:
        The opened (verified) reader.

    Raises:
        TraceFormatError: On any structural or checksum failure.
    """
    reader = TraceReader(path)
    try:
        reader.verify()
    except BaseException:
        reader.close()
        raise
    return reader


#: ``(resolved path, size, mtime_ns) -> fingerprint`` memo for
#: :func:`trace_fingerprint`; invalidated automatically when the file
#: changes because the stat signature is part of the key.
_FINGERPRINT_CACHE: dict[tuple[str, int, int], str] = {}


def trace_fingerprint(path: str | os.PathLike) -> str:
    """Collision-resistant content fingerprint of a trace file.

    A sha256 over the raw file bytes (the same hash family as every
    other artifact-store key), prefixed with the format version and
    size.  Memoized per ``(path, size, mtime)``, so hot callers — the
    experiment runner derives one store key per (pass, machine) — hash
    an unchanged file once per process.

    Raises:
        TraceFormatError: If the file cannot be read.
    """
    resolved = pathlib.Path(path)
    try:
        stat = resolved.stat()
        key = (str(resolved.resolve()), stat.st_size, stat.st_mtime_ns)
        cached = _FINGERPRINT_CACHE.get(key)
        if cached is not None:
            return cached
        digest = hashlib.sha256()
        with open(resolved, "rb") as handle:
            while True:
                block = handle.read(1 << 20)
                if not block:
                    break
                digest.update(block)
    except OSError as exc:
        raise TraceFormatError(
            f"cannot open trace {str(resolved)!r}: {exc}; "
            f"record one with `repro trace record`"
        ) from None
    fingerprint = (
        f"rpt{FORMAT_VERSION}:{stat.st_size}:{digest.hexdigest()}"
    )
    _FINGERPRINT_CACHE[key] = fingerprint
    return fingerprint


def read_file_crc(path: str | os.PathLike) -> int:
    """The whole-file CRC-32 recorded in a trace's footer (footer read only).

    Args:
        path: The ``.rpt`` file.

    Returns:
        The footer CRC value (not recomputed or validated).

    Raises:
        TraceFormatError: If the file is too short to hold a footer.
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() < len(_END_TAG) + _CRC.size:
                raise TraceFormatError(
                    f"trace {str(path)!r}: too short to hold a footer"
                )
            handle.seek(-_CRC.size, os.SEEK_END)
            (crc,) = _CRC.unpack(handle.read(_CRC.size))
    except OSError as exc:
        raise TraceFormatError(
            f"cannot open trace {str(path)!r}: {exc}"
        ) from None
    return crc


def trace_store_key(
    workload_name: str, num_threads: int, scale: float,
    code: str | None = None,
) -> str:
    """Artifact-store key of a recorded trace.

    Covers the workload identity and the *recording* code fingerprint (a
    source change means traces would record differently, so old ones
    become unreachable rather than silently reused).

    Args:
        workload_name: The recorded workload's name.
        num_threads: Recorded thread count.
        scale: Recorded scale factor.
        code: The code fingerprint the trace was recorded under
            (``meta["code_fingerprint"]``); defaults to the current
            package's — correct when storing or looking up traces
            recorded by this very code version.

    Returns:
        A hex key string.
    """
    from repro.store import ArtifactStore, code_fingerprint

    return ArtifactStore.derive_key(
        trace=workload_name,
        threads=num_threads,
        scale=scale,
        format=FORMAT_VERSION,
        code=code_fingerprint() if code is None else code,
    )


def store_trace(store, path: str | os.PathLike) -> pathlib.Path | None:
    """Copy a recorded trace into the artifact store, content-keyed.

    The key is derived from the trace's own metadata
    (:func:`trace_store_key`), so :func:`stored_trace` finds it from the
    workload coordinates alone.

    Args:
        store: An :class:`~repro.store.ArtifactStore`.
        path: The ``.rpt`` file to store.

    Returns:
        The stored path, or ``None`` when the store is disabled.
    """
    with TraceReader(path) as reader:
        key = trace_store_key(
            reader.meta["workload"], reader.num_threads,
            reader.meta["scale"],
            code=reader.meta.get("code_fingerprint"),
        )
    return store.put_file("traces", key, path)


def stored_trace(
    store, workload_name: str, num_threads: int, scale: float,
    code: str | None = None,
) -> pathlib.Path | None:
    """Look up a stored trace, fully validated.

    A stored file with a corrupt chunk raises
    :class:`~repro.errors.TraceFormatError` inside validation, which the
    store counts as a miss (and unlinks) — it is never replayed.

    Args:
        store: An :class:`~repro.store.ArtifactStore`.
        workload_name: The recorded workload's name.
        num_threads: Recorded thread count.
        scale: Recorded scale factor.
        code: The recording's code fingerprint; defaults to the current
            package's, so traces recorded under *older* code miss (they
            would no longer match current generation).  Pass the
            archived trace's own ``meta["code_fingerprint"]`` to look it
            up regardless.

    Returns:
        The validated trace path, or ``None`` on miss.
    """
    key = trace_store_key(workload_name, num_threads, scale, code=code)
    return store.get_file("traces", key, validate=validate_trace)


def trace_summary(reader: TraceReader) -> dict:
    """Summarize an open trace reader (``repro trace inspect`` payload).

    Args:
        reader: An open :class:`TraceReader`.

    Returns:
        A dict with the metadata block plus structural facts: file size,
        chunk count, total payload bytes, file CRC, and fingerprint.
    """
    chunk_bytes = sum(length for _, length, _ in reader.iter_chunk_info())
    return {
        "path": str(reader.path),
        "file_bytes": reader.path.stat().st_size,
        "version": FORMAT_VERSION,
        "workload": reader.meta["workload"],
        "input_size": reader.meta.get("input_size", ""),
        "scale": reader.meta["scale"],
        "num_threads": reader.num_threads,
        "num_regions": reader.num_regions,
        "num_blocks": len(reader.blocks),
        "chunk_payload_bytes": chunk_bytes,
        "file_crc": f"{reader.file_crc():08x}",
        "fingerprint": reader.fingerprint(),
        "code_fingerprint": reader.meta.get("code_fingerprint", ""),
    }


def inspect_trace(path: str | os.PathLike) -> dict:
    """Open and summarize a trace file (see :func:`trace_summary`)."""
    with TraceReader(path) as reader:
        return trace_summary(reader)
