"""Program representation: basic blocks and per-region execution traces.

The unit the simulator and profiler consume is the :class:`BlockExec`: one
static :class:`BasicBlock` executed ``count`` times back-to-back together
with the memory-line reference stream those executions produce.  A
:class:`ThreadTrace` is the ordered list of block executions one thread
performs between two barriers, and a :class:`RegionTrace` bundles all
threads of one inter-barrier region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError

_EMPTY_LINES = np.empty(0, dtype=np.int64)
_EMPTY_WRITES = np.empty(0, dtype=bool)


@dataclass(frozen=True)
class BasicBlock:
    """A static basic block of the (synthetic) program.

    ``instructions`` is the count per single execution of the block body;
    ``mispredict_rate`` is the probability the block-terminating branch is
    mispredicted; ``mlp`` is the effective number of overlapping long-latency
    misses the block sustains (streaming code ~4, pointer chasing ~1);
    ``code_lines`` are the I-cache lines holding the block's code.
    """

    bb_id: int
    name: str
    instructions: int
    mispredict_rate: float = 0.01
    mlp: float = 2.0
    code_lines: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise WorkloadError(f"block {self.name!r} must have >= 1 instruction")
        if not 0.0 <= self.mispredict_rate <= 1.0:
            raise WorkloadError(f"block {self.name!r} mispredict rate out of [0, 1]")
        if self.mlp < 1.0:
            raise WorkloadError(f"block {self.name!r} MLP must be >= 1")


@dataclass(frozen=True)
class BlockExec:
    """``count`` consecutive executions of ``block`` plus their data refs.

    ``lines`` holds cache-line addresses in access order; ``writes`` is a
    parallel boolean mask (True for stores).  The streams of consecutive
    block executions are concatenated — the split across the ``count``
    iterations is immaterial to both profiling and timing.
    """

    block: BasicBlock
    count: int
    lines: np.ndarray = field(default_factory=lambda: _EMPTY_LINES)
    writes: np.ndarray = field(default_factory=lambda: _EMPTY_WRITES)

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise WorkloadError(f"block {self.block.name!r} executed {self.count} times")
        if self.lines.shape != self.writes.shape:
            raise WorkloadError(
                f"lines/writes mismatch in {self.block.name!r}: "
                f"{self.lines.shape} vs {self.writes.shape}"
            )

    @property
    def instructions(self) -> int:
        """Dynamic instruction count contributed by this execution group."""
        return self.block.instructions * self.count

    @property
    def num_refs(self) -> int:
        """Number of data memory references."""
        return int(self.lines.size)


@dataclass(frozen=True)
class ThreadTrace:
    """Everything one thread executes inside one inter-barrier region."""

    thread_id: int
    blocks: tuple[BlockExec, ...]

    @property
    def instructions(self) -> int:
        """Dynamic instructions this thread executes in the region."""
        return sum(b.instructions for b in self.blocks)

    @property
    def num_refs(self) -> int:
        """Data memory references this thread issues in the region."""
        return sum(b.num_refs for b in self.blocks)


@dataclass(frozen=True)
class RegionTrace:
    """One inter-barrier region: per-thread traces plus identity metadata."""

    region_index: int
    phase: str
    threads: tuple[ThreadTrace, ...]

    def __post_init__(self) -> None:
        if not self.threads:
            raise WorkloadError(f"region {self.region_index} has no threads")
        ids = [t.thread_id for t in self.threads]
        if ids != list(range(len(ids))):
            raise WorkloadError(
                f"region {self.region_index}: thread ids must be 0..n-1, got {ids}"
            )

    @property
    def num_threads(self) -> int:
        """Thread count of the region (equals the machine's core count)."""
        return len(self.threads)

    @property
    def instructions(self) -> int:
        """Aggregate dynamic instruction count across all threads.

        This is the region "length" used to weight clustering and to compute
        barrierpoint multipliers (the paper's global instruction count).
        """
        return sum(t.instructions for t in self.threads)

    @property
    def num_refs(self) -> int:
        """Aggregate data memory reference count across threads."""
        return sum(t.num_refs for t in self.threads)


def concat_refs(
    chunks: list[tuple[np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate ``(lines, writes)`` chunks into one reference stream."""
    if not chunks:
        return _EMPTY_LINES.copy(), _EMPTY_WRITES.copy()
    lines = np.concatenate([c[0] for c in chunks])
    writes = np.concatenate([c[1] for c in chunks])
    return lines, writes
