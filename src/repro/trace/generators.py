"""Memory reference pattern generators.

Each generator returns a ``(lines, writes)`` pair: cache-line addresses in
access order and a parallel store mask.  These are the building blocks the
synthetic workloads compose into per-phase reference streams: contiguous
sweeps (dense array kernels), stencils (structured-grid codes), random
gathers (sparse matrices), all-to-all block reads (FFT transposes), and
scatter histograms (bucket sort).

Addresses are already line-granular (the workloads allocate arrays in units
of 64-byte lines), which halves trace volume without changing any cache,
reuse-distance or warmup behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError


def _check_positive(**kwargs: int) -> None:
    for name, value in kwargs.items():
        if value <= 0:
            raise WorkloadError(f"{name} must be positive, got {value}")


def concat(
    *chunks: tuple[np.ndarray, np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate ``(lines, writes)`` pairs into one reference stream."""
    if not chunks:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
    lines = np.concatenate([c[0] for c in chunks])
    writes = np.concatenate([c[1] for c in chunks])
    return lines, writes


def strided_sweep(
    base: int, n_lines: int, stride: int = 1, write: bool = False, repeat: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Sweep ``n_lines`` lines starting at ``base`` with ``stride``.

    ``repeat`` > 1 re-walks the same range, producing short reuse distances
    (the signature of a cache-resident kernel).
    """
    _check_positive(n_lines=n_lines, repeat=repeat)
    if stride == 0:
        raise WorkloadError("stride must be non-zero")
    one = base + np.arange(n_lines, dtype=np.int64) * stride
    lines = np.tile(one, repeat)
    writes = np.full(lines.size, write, dtype=bool)
    return lines, writes


def read_modify_write_sweep(
    base: int, n_lines: int, stride: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Read-then-write each line in a strided walk (e.g. ``a[i] += b``)."""
    _check_positive(n_lines=n_lines)
    idx = base + np.arange(n_lines, dtype=np.int64) * stride
    lines = np.repeat(idx, 2)
    writes = np.zeros(lines.size, dtype=bool)
    writes[1::2] = True
    return lines, writes


def stencil_sweep(
    base: int, n_lines: int, radius: int = 1, write_center: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Walk a 1-D stencil: read ``[-radius, +radius]`` around each point.

    Neighbouring stencil applications re-touch lines, yielding the short
    reuse distances typical of structured-grid sweeps (lu/mg/sp kernels).
    """
    _check_positive(n_lines=n_lines, radius=radius)
    centers = base + np.arange(n_lines, dtype=np.int64)
    offsets = np.arange(-radius, radius + 1, dtype=np.int64)
    lines = (centers[:, None] + offsets[None, :]).ravel()
    writes = np.zeros(lines.size, dtype=bool)
    if write_center:
        # The centre of each stencil application is written back.
        width = offsets.size
        writes[radius::width] = True
    return np.clip(lines, base, None), writes


def random_gather(
    rng: np.random.Generator,
    base: int,
    footprint_lines: int,
    count: int,
    write_fraction: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """``count`` uniformly random touches within a ``footprint_lines`` window.

    Models indirect access through an index array (sparse mat-vec in cg).
    """
    _check_positive(footprint_lines=footprint_lines, count=count)
    if not 0.0 <= write_fraction <= 1.0:
        raise WorkloadError("write_fraction must be in [0, 1]")
    lines = base + rng.integers(0, footprint_lines, size=count, dtype=np.int64)
    writes = rng.random(count) < write_fraction
    return lines, writes


def blocked_all_to_all(
    base: int,
    lines_per_owner: int,
    num_owners: int,
    reader: int,
    chunk_lines: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Read one chunk from every owner's block (FFT transpose traffic).

    ``reader`` selects which chunk of each owner's block this thread reads,
    so all threads collectively cover the array while each touches remote
    threads' data — generating the sharing/coherence traffic of npb-ft.
    """
    _check_positive(lines_per_owner=lines_per_owner, num_owners=num_owners,
                    chunk_lines=chunk_lines)
    if not 0 <= reader < num_owners:
        raise WorkloadError(f"reader {reader} out of range [0, {num_owners})")
    chunks = []
    offset = (reader * chunk_lines) % max(lines_per_owner, 1)
    for owner in range(num_owners):
        start = base + owner * lines_per_owner + offset
        span = min(chunk_lines, lines_per_owner - offset)
        if span > 0:
            chunks.append(start + np.arange(span, dtype=np.int64))
    lines = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    writes = np.zeros(lines.size, dtype=bool)
    return lines, writes


def histogram_scatter(
    rng: np.random.Generator,
    keys_base: int,
    n_keys: int,
    buckets_base: int,
    n_buckets: int,
    skew: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Bucket-sort inner loop: stream keys, scatter-update random buckets.

    Each key is one sequential read followed by a read-modify-write of a
    bucket counter line; ``skew`` > 1 concentrates traffic on few buckets
    (a power-law key distribution, as in npb-is class A).
    """
    _check_positive(n_keys=n_keys, n_buckets=n_buckets)
    if skew <= 0:
        raise WorkloadError("skew must be positive")
    key_lines = keys_base + np.arange(n_keys, dtype=np.int64) // 8
    u = rng.random(n_keys)
    bucket_idx = np.floor(n_buckets * u**skew).astype(np.int64)
    bucket_idx = np.clip(bucket_idx, 0, n_buckets - 1)
    bucket_lines = buckets_base + bucket_idx
    # Interleave: key read, bucket read, bucket write.
    lines = np.empty(n_keys * 3, dtype=np.int64)
    writes = np.zeros(n_keys * 3, dtype=bool)
    lines[0::3] = key_lines
    lines[1::3] = bucket_lines
    lines[2::3] = bucket_lines
    writes[2::3] = True
    return lines, writes


def reduction_accumulate(
    base: int, n_lines: int, rounds: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Repeatedly read-modify-write a small shared window (dot products)."""
    _check_positive(n_lines=n_lines, rounds=rounds)
    idx = base + np.arange(n_lines, dtype=np.int64)
    one_round = np.repeat(idx, 2)
    lines = np.tile(one_round, rounds)
    writes = np.zeros(lines.size, dtype=bool)
    writes[1::2] = True
    return lines, writes


def pointer_chase(
    rng: np.random.Generator, base: int, footprint_lines: int, count: int
) -> tuple[np.ndarray, np.ndarray]:
    """Serially dependent random walk (linked-list traversal).

    Identical cache behaviour to :func:`random_gather` but callers attach it
    to blocks with ``mlp == 1`` to model the lost memory-level parallelism.
    """
    return random_gather(rng, base, footprint_lines, count, write_fraction=0.0)
