"""Memory reference pattern generators.

Each generator returns a ``(lines, writes)`` pair: cache-line addresses in
access order and a parallel store mask.  These are the building blocks the
synthetic workloads compose into per-phase reference streams: contiguous
sweeps (dense array kernels), stencils (structured-grid codes), random
gathers (sparse matrices), all-to-all block reads (FFT transposes), and
scatter histograms (bucket sort).

Addresses are already line-granular (the workloads allocate arrays in units
of 64-byte lines), which halves trace volume without changing any cache,
reuse-distance or warmup behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.trace.rng import stream_rng


def _check_positive(**kwargs: int) -> None:
    for name, value in kwargs.items():
        if value <= 0:
            raise WorkloadError(f"{name} must be positive, got {value}")


def concat(
    *chunks: tuple[np.ndarray, np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate ``(lines, writes)`` pairs into one reference stream."""
    if not chunks:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
    lines = np.concatenate([c[0] for c in chunks])
    writes = np.concatenate([c[1] for c in chunks])
    return lines, writes


def strided_sweep(
    base: int, n_lines: int, stride: int = 1, write: bool = False, repeat: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Sweep ``n_lines`` lines starting at ``base`` with ``stride``.

    ``repeat`` > 1 re-walks the same range, producing short reuse distances
    (the signature of a cache-resident kernel).
    """
    _check_positive(n_lines=n_lines, repeat=repeat)
    if stride == 0:
        raise WorkloadError("stride must be non-zero")
    one = base + np.arange(n_lines, dtype=np.int64) * stride
    lines = np.tile(one, repeat)
    writes = np.full(lines.size, write, dtype=bool)
    return lines, writes


def read_modify_write_sweep(
    base: int, n_lines: int, stride: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Read-then-write each line in a strided walk (e.g. ``a[i] += b``)."""
    _check_positive(n_lines=n_lines)
    idx = base + np.arange(n_lines, dtype=np.int64) * stride
    lines = np.repeat(idx, 2)
    writes = np.zeros(lines.size, dtype=bool)
    writes[1::2] = True
    return lines, writes


def stencil_sweep(
    base: int, n_lines: int, radius: int = 1, write_center: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Walk a 1-D stencil: read ``[-radius, +radius]`` around each point.

    Neighbouring stencil applications re-touch lines, yielding the short
    reuse distances typical of structured-grid sweeps (lu/mg/sp kernels).
    """
    _check_positive(n_lines=n_lines, radius=radius)
    centers = base + np.arange(n_lines, dtype=np.int64)
    offsets = np.arange(-radius, radius + 1, dtype=np.int64)
    lines = (centers[:, None] + offsets[None, :]).ravel()
    writes = np.zeros(lines.size, dtype=bool)
    if write_center:
        # The centre of each stencil application is written back.
        width = offsets.size
        writes[radius::width] = True
    return np.clip(lines, base, None), writes


def random_gather(
    rng: np.random.Generator,
    base: int,
    footprint_lines: int,
    count: int,
    write_fraction: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """``count`` uniformly random touches within a ``footprint_lines`` window.

    Models indirect access through an index array (sparse mat-vec in cg).
    """
    _check_positive(footprint_lines=footprint_lines, count=count)
    if not 0.0 <= write_fraction <= 1.0:
        raise WorkloadError("write_fraction must be in [0, 1]")
    lines = base + rng.integers(0, footprint_lines, size=count, dtype=np.int64)
    writes = rng.random(count) < write_fraction
    return lines, writes


def blocked_all_to_all(
    base: int,
    lines_per_owner: int,
    num_owners: int,
    reader: int,
    chunk_lines: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Read one chunk from every owner's block (FFT transpose traffic).

    ``reader`` selects which chunk of each owner's block this thread reads,
    so all threads collectively cover the array while each touches remote
    threads' data — generating the sharing/coherence traffic of npb-ft.
    """
    _check_positive(lines_per_owner=lines_per_owner, num_owners=num_owners,
                    chunk_lines=chunk_lines)
    if not 0 <= reader < num_owners:
        raise WorkloadError(f"reader {reader} out of range [0, {num_owners})")
    chunks = []
    offset = (reader * chunk_lines) % max(lines_per_owner, 1)
    for owner in range(num_owners):
        start = base + owner * lines_per_owner + offset
        span = min(chunk_lines, lines_per_owner - offset)
        if span > 0:
            chunks.append(start + np.arange(span, dtype=np.int64))
    lines = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    writes = np.zeros(lines.size, dtype=bool)
    return lines, writes


def histogram_scatter(
    rng: np.random.Generator,
    keys_base: int,
    n_keys: int,
    buckets_base: int,
    n_buckets: int,
    skew: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Bucket-sort inner loop: stream keys, scatter-update random buckets.

    Each key is one sequential read followed by a read-modify-write of a
    bucket counter line; ``skew`` > 1 concentrates traffic on few buckets
    (a power-law key distribution, as in npb-is class A).
    """
    _check_positive(n_keys=n_keys, n_buckets=n_buckets)
    if skew <= 0:
        raise WorkloadError("skew must be positive")
    key_lines = keys_base + np.arange(n_keys, dtype=np.int64) // 8
    u = rng.random(n_keys)
    bucket_idx = np.floor(n_buckets * u**skew).astype(np.int64)
    bucket_idx = np.clip(bucket_idx, 0, n_buckets - 1)
    bucket_lines = buckets_base + bucket_idx
    # Interleave: key read, bucket read, bucket write.
    lines = np.empty(n_keys * 3, dtype=np.int64)
    writes = np.zeros(n_keys * 3, dtype=bool)
    lines[0::3] = key_lines
    lines[1::3] = bucket_lines
    lines[2::3] = bucket_lines
    writes[2::3] = True
    return lines, writes


def reduction_accumulate(
    base: int, n_lines: int, rounds: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Repeatedly read-modify-write a small shared window (dot products)."""
    _check_positive(n_lines=n_lines, rounds=rounds)
    idx = base + np.arange(n_lines, dtype=np.int64)
    one_round = np.repeat(idx, 2)
    lines = np.tile(one_round, rounds)
    writes = np.zeros(lines.size, dtype=bool)
    writes[1::2] = True
    return lines, writes


def pointer_chase(
    rng: np.random.Generator, base: int, footprint_lines: int, count: int
) -> tuple[np.ndarray, np.ndarray]:
    """Serially dependent random walk (linked-list traversal).

    Identical cache behaviour to :func:`random_gather` but callers attach it
    to blocks with ``mlp == 1`` to model the lost memory-level parallelism.
    """
    return random_gather(rng, base, footprint_lines, count, write_fraction=0.0)


#: Largest accepted fuzzer seed.  Seeds feed the counter-based stream
#: keys and are recorded into trace metadata as JSON integers; bounding
#: them to a signed 64-bit range keeps every representation exact.
MAX_SEED = 2**63 - 1


@dataclass(frozen=True)
class ScenarioFuzzer:
    """Seeded generator of randomized barrier-structured scenarios.

    Every knob of a scenario is drawn from a counter-based stream keyed on
    ``seed`` (:mod:`repro.trace.rng`), so ``ScenarioFuzzer(seed)`` is a
    pure function: the same seed yields the same
    :class:`~repro.workloads.synthetic.SyntheticSpec` — and therefore the
    same traces — on every machine and process.  Scenarios are registered
    like workloads: ``get_workload("fuzz-<seed>", ...)`` resolves here,
    which makes them recordable/replayable through ``repro trace``.

    Randomized dimensions (the bounds are the constructor knobs):

    * **barrier-count jitter** — the region count of the schedule;
    * **phase mix and shifts** — how many phases, which access pattern
      each uses, and a per-iteration rotation of the phase order;
    * **thread imbalance** — a per-phase skew of per-thread work;
    * **shared/private mix** — whether a phase's threads partition its
      array or contend on the whole footprint.
    """

    seed: int
    min_phases: int = 2
    max_phases: int = 4
    min_regions: int = 8
    max_regions: int = 40
    max_footprint_lines: int = 4096
    max_refs_per_thread: int = 3000

    def __post_init__(self) -> None:
        # Validate the seed loudly at construction: a bad seed would
        # otherwise only fail deep inside numpy's RNG seeding (or worse,
        # silently coerce, as bools would).
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise WorkloadError(
                f"fuzzer seed must be an int, got "
                f"{type(self.seed).__name__} {self.seed!r}"
            )
        if self.seed < 0:
            raise WorkloadError(f"fuzzer seed must be >= 0, got {self.seed}")
        if self.seed > MAX_SEED:
            raise WorkloadError(
                f"fuzzer seed must be <= {MAX_SEED} (2**63 - 1), got "
                f"{self.seed}"
            )
        if not 1 <= self.min_phases <= self.max_phases:
            raise WorkloadError("fuzzer phase bounds must satisfy 1 <= min <= max")
        if not 1 <= self.min_regions <= self.max_regions:
            raise WorkloadError("fuzzer region bounds must satisfy 1 <= min <= max")

    @property
    def name(self) -> str:
        """The workload-registry name of this scenario (``fuzz-<seed>``)."""
        return f"fuzz-{self.seed}"

    def _rng(self, *parts: object) -> np.random.Generator:
        """A deterministic stream scoped to this scenario plus ``parts``."""
        return stream_rng("scenario-fuzzer", self.seed, *parts)

    def spec(self):
        """Draw the scenario's :class:`~repro.workloads.synthetic.SyntheticSpec`."""
        from repro.workloads.synthetic import PATTERNS, PhaseSpec, SyntheticSpec

        rng = self._rng("spec")
        num_phases = int(rng.integers(self.min_phases, self.max_phases + 1))
        phases = []
        for p in range(num_phases):
            pattern = PATTERNS[int(rng.integers(0, len(PATTERNS)))]
            phases.append(PhaseSpec(
                name=f"ph{p}_{pattern}",
                pattern=pattern,
                footprint_lines=int(rng.integers(
                    64, self.max_footprint_lines + 1
                )),
                refs_per_thread=int(rng.integers(
                    100, self.max_refs_per_thread + 1
                )),
                instructions_per_ref=int(rng.integers(2, 9)),
                mlp=float(rng.choice((1.0, 2.0, 4.0))),
                write_fraction=float(rng.uniform(0.0, 0.5)),
                shared=bool(rng.random() < 0.3),
                length_jitter=float(rng.uniform(0.0, 0.3)),
                imbalance=float(rng.uniform(0.0, 0.6)),
            ))
        num_regions = int(rng.integers(self.min_regions, self.max_regions + 1))
        schedule = []
        names = [p.name for p in phases]
        for region in range(num_regions):
            iteration = region // num_phases
            # Phase shift: each loop trip rotates the phase order, so
            # region index and phase identity decorrelate across seeds.
            shift = int(rng.integers(0, num_phases))
            schedule.append((
                names[(region + shift) % num_phases], iteration
            ))
        return SyntheticSpec(
            name=self.name,
            phases=tuple(phases),
            schedule=tuple(schedule),
            input_size="fuzz",
        )

    def workload(self, num_threads: int, scale: float = 1.0):
        """Instantiate the scenario as a runnable workload.

        Args:
            num_threads: Thread count (one per simulated core).
            scale: Footprint/work scale factor.

        Returns:
            A :class:`~repro.workloads.synthetic.SyntheticWorkload`.
        """
        from repro.workloads.synthetic import SyntheticWorkload

        return SyntheticWorkload(
            self.spec(), num_threads=num_threads, scale=scale
        )

    def stream(
        self, length: int, footprint_lines: int = 512, tag: str = "stream"
    ) -> tuple[np.ndarray, np.ndarray]:
        """A raw seeded ``(lines, writes)`` reference stream.

        A convenience for property tests that want adversarial access
        streams without building a whole workload: mixes sweeps, gathers,
        and scatters drawn from the scenario's stream.

        Args:
            length: Minimum number of references to produce.
            footprint_lines: Address window the stream touches.
            tag: Extra stream-key part (distinct tags → independent streams).

        Returns:
            ``(lines, writes)`` with at least ``length`` references.
        """
        _check_positive(length=length, footprint_lines=footprint_lines)
        rng = self._rng("stream", tag, length, footprint_lines)
        chunks: list[tuple[np.ndarray, np.ndarray]] = []
        produced = 0
        while produced < length:
            kind = int(rng.integers(0, 3))
            want = int(rng.integers(1, max(2, length // 4)))
            if kind == 0:
                n = min(want, footprint_lines)
                chunks.append(strided_sweep(
                    int(rng.integers(0, footprint_lines)), max(n, 1),
                    repeat=int(rng.integers(1, 4)),
                ))
            elif kind == 1:
                chunks.append(random_gather(
                    rng, 0, footprint_lines, want,
                    write_fraction=float(rng.uniform(0.0, 0.5)),
                ))
            else:
                n_keys = max(1, want // 3)
                chunks.append(histogram_scatter(
                    rng, 0, n_keys, footprint_lines // 2,
                    max(1, footprint_lines // 2),
                ))
            produced += chunks[-1][0].size
        return concat(*chunks)
