"""Counter-based deterministic random streams.

Every random decision in a workload derives from a seed computed by hashing
the identifying coordinates of the stream (workload name, thread count,
region index, thread id, purpose tag).  This gives "splittable" randomness:
regenerating any region's trace never requires replaying earlier regions,
which is what lets barrierpoints be simulated independently and in parallel.
"""

from __future__ import annotations

import hashlib

import numpy as np

_SEED_BYTES = 8


def stream_seed(*parts: object) -> int:
    """Derive a stable 64-bit seed from a tuple of identifying parts.

    Parts are rendered with ``repr`` and joined, so ints, strings and floats
    all participate; the digest is stable across processes and platforms
    (unlike built-in ``hash``).
    """
    text = "\x1f".join(repr(p) for p in parts)
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=_SEED_BYTES)
    return int.from_bytes(digest.digest(), "little")


def stream_rng(*parts: object) -> np.random.Generator:
    """A NumPy generator seeded from :func:`stream_seed` of ``parts``."""
    return np.random.Generator(np.random.PCG64(stream_seed(*parts)))
