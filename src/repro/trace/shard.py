"""Region-range sharding of recorded traces, with deterministic parallel replay.

A *shard* is a standalone ``.rpt`` file holding a contiguous region range
``[start, end)`` of a parent trace: same format version, same metadata
(workload identity, thread count, scale, block table), the schedule sliced
to the range, plus a ``meta["shard"]`` provenance block naming the parent's
content fingerprint and the range.  Shards are produced by byte-exact
copies of the parent's chunk payloads (re-indexed and re-CRC'd), so a
shard's chunk ``k`` is bit-identical to the parent's chunk ``start + k``.

**Merge determinism contract.**  Replay state is *cumulative*: the
functional profiler keeps one persistent LRU stack per thread across
regions, and the detailed simulator carries cache/core state from region
to region.  A shard replayed cold would therefore diverge from the same
regions inside an unsharded replay.  :class:`ShardedReplay` restores bit
identity by *prefix warming*: the worker for shard ``k`` replays the chain
of shards ``0..k`` from region 0 and keeps only the results of shard
``k``'s own range.  Every region is thus computed with exactly the warmup
history the unsharded replay would have given it, so concatenating the
per-shard slices in shard order reproduces the unsharded profiles and
:class:`~repro.sim.machine.FullRunResult` bit for bit — on every
hierarchy backend (``tests/test_trace_shard.py`` asserts this).  The
price is prefix work (shard ``k`` replays ``end_k`` regions), which the
fan-out runs in parallel; wall-clock is bounded by the full-chain task.

Fan-out inherits the experiment runner's fault tolerance wholesale
(:class:`~repro.experiments.common.FaultTolerantFanout`): retry/backoff,
per-task timeouts, pool respawn, serial fallback, and the ``runner.task``
/ ``trace.read`` fault-injection sites.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from bisect import bisect_right
from dataclasses import dataclass

from repro.errors import ConfigError, TraceFormatError, WorkloadError
from repro.trace.capture import (
    FORMAT_VERSION,
    MAGIC,
    TraceReader,
    _CHUNK_HEAD,
    _CHUNK_TAG,
    _CRC,
    _END_TAG,
    _HEAD_FIXED,
    _crc32,
    trace_fingerprint,
)
from repro.workloads.base import PhaseInstance, Workload
from repro.workloads.replay import decode_block_execs

#: Metadata key carrying a shard's provenance block.
SHARD_META_KEY = "shard"


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic split of one trace into contiguous region ranges.

    Attributes:
        parent_fingerprint: Content fingerprint of the parent trace
            (:func:`~repro.trace.capture.trace_fingerprint`), binding the
            plan — and every shard cut from it — to exact parent bytes.
        parent_regions: The parent's region count.
        boundaries: ``num_shards + 1`` strictly increasing region indices
            from ``0`` to ``parent_regions``; shard ``k`` covers regions
            ``[boundaries[k], boundaries[k + 1])``.
    """

    parent_fingerprint: str
    parent_regions: int
    boundaries: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.parent_regions < 1:
            raise ConfigError(
                f"shard plan needs at least 1 region, got "
                f"{self.parent_regions}"
            )
        b = self.boundaries
        if len(b) < 2 or b[0] != 0 or b[-1] != self.parent_regions:
            raise ConfigError(
                f"shard boundaries {b} must run from 0 to "
                f"{self.parent_regions} (the parent's region count)"
            )
        for k in range(len(b) - 1):
            if b[k + 1] <= b[k]:
                raise ConfigError(
                    f"shard boundaries {b} are not strictly increasing at "
                    f"index {k}: every shard must cover at least one "
                    f"region (empty shards are not representable as "
                    f"standalone traces)"
                )

    @property
    def num_shards(self) -> int:
        """Number of shards the plan cuts."""
        return len(self.boundaries) - 1

    def shard_range(self, index: int) -> tuple[int, int]:
        """The ``[start, end)`` region range of shard ``index``."""
        if not 0 <= index < self.num_shards:
            raise ConfigError(
                f"shard index {index} out of range [0, {self.num_shards})"
            )
        return self.boundaries[index], self.boundaries[index + 1]

    @classmethod
    def even(cls, path: str | os.PathLike, num_shards: int) -> ShardPlan:
        """Derive the canonical even split of a trace from its header.

        Boundary ``k`` is ``k * num_regions // num_shards`` — a pure
        function of the header, so every process derives the same plan
        for the same trace and shard count.

        Args:
            path: The parent ``.rpt`` trace.
            num_shards: How many shards to cut (1 = a single full-range
                shard).

        Returns:
            The plan.

        Raises:
            ConfigError: When ``num_shards`` < 1 or exceeds the region
                count (an empty shard cannot be a valid ``.rpt`` file).
        """
        reader = TraceReader(path)
        regions = reader.num_regions
        if num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
        if num_shards > regions:
            raise ConfigError(
                f"cannot cut {num_shards} shards from trace "
                f"{str(reader.path)!r} with only {regions} region(s): "
                f"every shard must hold at least one region"
            )
        return cls(
            parent_fingerprint=reader.fingerprint(),
            parent_regions=regions,
            boundaries=tuple(
                k * regions // num_shards for k in range(num_shards + 1)
            ),
        )

    @classmethod
    def from_boundaries(
        cls, path: str | os.PathLike, boundaries: tuple[int, ...]
    ) -> ShardPlan:
        """A plan with explicit boundaries, validated against the trace.

        Args:
            path: The parent ``.rpt`` trace.
            boundaries: Strictly increasing region indices from 0 to the
                parent's region count.

        Returns:
            The plan.

        Raises:
            ConfigError: On malformed boundaries (see :class:`ShardPlan`).
        """
        reader = TraceReader(path)
        return cls(
            parent_fingerprint=reader.fingerprint(),
            parent_regions=reader.num_regions,
            boundaries=tuple(int(b) for b in boundaries),
        )


def shard_provenance(path: str | os.PathLike) -> dict | None:
    """The ``meta["shard"]`` provenance block of a trace, or ``None``.

    Args:
        path: Any ``.rpt`` file.

    Returns:
        The provenance dict (``parent``, ``parent_regions``, ``start``,
        ``end``, ``index``, ``count``) for shard files, ``None`` for
        unsharded traces.
    """
    return TraceReader(path).meta.get(SHARD_META_KEY)


def _write_shard(
    reader: TraceReader, meta: dict, start: int, end: int,
    path: pathlib.Path,
) -> pathlib.Path:
    """Stream one shard file: sliced metadata + byte-exact chunk copies."""
    path.parent.mkdir(parents=True, exist_ok=True)
    meta_raw = json.dumps(
        meta, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    fd, tmp = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    crc = 0
    try:
        with os.fdopen(fd, "wb") as out:
            def emit(data: bytes) -> None:
                nonlocal crc
                crc = _crc32(data, crc)
                out.write(data)

            emit(_HEAD_FIXED.pack(MAGIC, FORMAT_VERSION, len(meta_raw)))
            emit(meta_raw)
            emit(_CRC.pack(_crc32(meta_raw)))
            for local, parent_region in enumerate(range(start, end)):
                payload = reader._read_payload(parent_region)
                emit(_CHUNK_HEAD.pack(
                    _CHUNK_TAG, local, len(payload), _crc32(payload)
                ))
                emit(payload)
            out.write(_END_TAG + _CRC.pack(crc))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def split_trace(
    path: str | os.PathLike,
    out_dir: str | os.PathLike,
    num_shards: int | None = None,
    boundaries: tuple[int, ...] | None = None,
) -> list[pathlib.Path]:
    """Cut a trace into standalone shard files under ``out_dir``.

    Each shard is a fully valid ``.rpt`` trace (header, per-chunk CRCs,
    footer CRC) whose chunk payloads are byte-exact copies of the
    parent's (CRC-revalidated on read), carrying provenance under
    ``meta["shard"]``.  File names are
    ``<parent stem>.shard-<k>-of-<S>.rpt``.

    Args:
        path: The parent trace.
        out_dir: Directory for the shard files (created if missing).
        num_shards: Cut the canonical even plan (:meth:`ShardPlan.even`).
            Mutually exclusive with ``boundaries``.
        boundaries: Explicit boundary list (``ShardPlan.from_boundaries``).

    Returns:
        The shard paths in shard order.

    Raises:
        ConfigError: On a malformed plan request.
        TraceFormatError: When the parent trace is invalid or corrupt.
    """
    if (num_shards is None) == (boundaries is None):
        raise ConfigError(
            "split_trace needs exactly one of num_shards or boundaries"
        )
    if num_shards is not None:
        plan = ShardPlan.even(path, num_shards)
    else:
        plan = ShardPlan.from_boundaries(path, tuple(boundaries))
    reader = TraceReader(path)
    out_dir = pathlib.Path(out_dir)
    stem = pathlib.Path(path).stem
    written: list[pathlib.Path] = []
    for index in range(plan.num_shards):
        start, end = plan.shard_range(index)
        meta = dict(reader.meta)
        meta["num_regions"] = end - start
        meta["schedule"] = reader.meta["schedule"][start:end]
        meta[SHARD_META_KEY] = {
            "parent": plan.parent_fingerprint,
            "parent_regions": plan.parent_regions,
            "start": start,
            "end": end,
            "index": index,
            "count": plan.num_shards,
        }
        name = f"{stem}.shard-{index}-of-{plan.num_shards}.rpt"
        written.append(_write_shard(reader, meta, start, end, out_dir / name))
    return written


class ShardChainReplay(Workload):
    """Replay a contiguous chain of shards of one parent trace.

    The chain must start at the parent's region 0 and be gap-free (each
    shard's ``start`` equals the previous shard's ``end``); it may stop
    before the parent's last region — that prefix property is what lets
    :class:`ShardedReplay` warm each shard with exactly the history the
    unsharded replay would have.  Global region ``i`` is served from the
    owning shard's local chunk, so the observed executions equal the
    parent trace's regions ``0..end`` bit for bit.

    Parameters
    ----------
    paths:
        Shard files in chain order (each recorded by :func:`split_trace`).
    """

    def __init__(self, paths) -> None:
        if not paths:
            raise TraceFormatError("shard chain is empty")
        self._readers = [TraceReader(p) for p in paths]
        self._validate_chain()
        first = self._readers[0].meta
        self.name = first["workload"]
        self.input_size = first.get("input_size", "")
        self.shard_paths = tuple(str(r.path) for r in self._readers)
        #: Region boundaries of the chain: ``boundaries[k]`` is shard
        #: ``k``'s first global region; the last entry is the chain end.
        self.shard_boundaries = tuple(
            r.meta[SHARD_META_KEY]["start"] for r in self._readers
        ) + (self._readers[-1].meta[SHARD_META_KEY]["end"],)
        super().__init__(
            num_threads=first["num_threads"], scale=first["scale"]
        )
        # Bounded-memory replay, as in ReplayWorkload: the readers' LRU
        # windows are the only region cache.
        self._cache_traces = False
        self._trace_cache.clear()

    def _chain_fail(self, detail: str) -> TraceFormatError:
        """Uniform chain-validation error."""
        paths = [str(r.path) for r in self._readers]
        return TraceFormatError(
            f"shard chain {paths}: {detail} — re-cut the shards with "
            f"`repro trace corpus replay --shards N` or split_trace()"
        )

    def _validate_chain(self) -> None:
        """Reject any chain that is not a gap-free prefix of one parent."""
        provs = []
        for reader in self._readers:
            prov = reader.meta.get(SHARD_META_KEY)
            if prov is None:
                raise self._chain_fail(
                    f"{str(reader.path)!r} has no shard provenance "
                    f"(it is not a shard file)"
                )
            provs.append(prov)
        first = self._readers[0]
        for position, (reader, prov) in enumerate(zip(self._readers, provs)):
            if prov["parent"] != provs[0]["parent"]:
                raise self._chain_fail(
                    f"{str(reader.path)!r} was cut from a different parent "
                    f"trace ({prov['parent']} != {provs[0]['parent']})"
                )
            if prov["index"] != position:
                raise self._chain_fail(
                    f"{str(reader.path)!r} is shard {prov['index']} but "
                    f"sits at chain position {position}"
                )
            if prov["end"] - prov["start"] != reader.num_regions:
                raise self._chain_fail(
                    f"{str(reader.path)!r} declares range "
                    f"[{prov['start']}, {prov['end']}) but holds "
                    f"{reader.num_regions} region(s)"
                )
            for field in ("workload", "num_threads", "scale"):
                if reader.meta[field] != first.meta[field]:
                    raise self._chain_fail(
                        f"{str(reader.path)!r} disagrees on {field!r} "
                        f"({reader.meta[field]!r} != "
                        f"{first.meta[field]!r})"
                    )
        if provs[0]["start"] != 0:
            raise self._chain_fail(
                f"chain starts at region {provs[0]['start']}, not 0 — "
                f"replay state is cumulative, so a chain must always "
                f"start at the parent's first region"
            )
        for prev, nxt in zip(provs, provs[1:]):
            if nxt["start"] != prev["end"]:
                raise self._chain_fail(
                    f"gap between region {prev['end']} and "
                    f"{nxt['start']}: shards must be contiguous"
                )

    def _build(self) -> None:
        """Concatenate shard schedules; adopt the (shared) block table."""
        for reader in self._readers:
            for phase, iteration, param in reader.meta["schedule"]:
                self._schedule.append(PhaseInstance(phase, iteration, param))
        first = self._readers[0]
        for reader in self._readers[1:]:
            if reader.meta["blocks"] != first.meta["blocks"]:
                raise self._chain_fail(
                    f"{str(reader.path)!r} declares a different block "
                    f"table than {str(first.path)!r}"
                )
        for block in first.blocks:
            if block.name in self._blocks:
                raise WorkloadError(
                    f"shard {str(first.path)!r} declares block "
                    f"{block.name!r} twice"
                )
            self._blocks[block.name] = block
        by_id = sorted(self._blocks.values(), key=lambda b: b.bb_id)
        if [b.bb_id for b in by_id] != list(range(len(by_id))):
            raise WorkloadError(
                f"shard {str(first.path)!r} block ids are not dense"
            )
        self._block_table = tuple(by_id)

    def _build_thread(
        self, inst: PhaseInstance, region_index: int, thread_id: int
    ) -> list:
        """Serve one thread's executions from the owning shard's chunk."""
        shard = bisect_right(self.shard_boundaries, region_index) - 1
        reader = self._readers[shard]
        local = region_index - self.shard_boundaries[shard]
        return decode_block_execs(
            reader, local, thread_id, self._block_table,
            f"{str(reader.path)!r} (global region {region_index})",
        )

    def set_fault_attempt(self, attempt: int) -> None:
        """Report a task retry attempt to the ``trace.read`` fault site.

        Args:
            attempt: The enclosing task's 0-based attempt; attempt-gated
                fault rules stop firing once it reaches their budget, so
                retried shard tasks recover deterministically.
        """
        for reader in self._readers:
            reader.fault_attempt = attempt

    def close(self) -> None:
        """Close every shard reader."""
        for reader in self._readers:
            reader.close()


def _replay_shard_task(task: tuple) -> dict:
    """Pool worker: prefix-warmed replay of one shard's region range.

    Args:
        task: ``(paths, start, end, machine, want_profiles, want_full
            [, attempt, timeout])`` — ``paths`` is the shard chain
            ``0..k`` (prefix warming), ``[start, end)`` the range whose
            results are kept, ``machine`` a picklable
            :class:`~repro.config.MachineConfig`.

    Returns:
        ``{"profiles": [RegionProfile state, ...]}`` and/or
        ``{"full": FullRunResult state}`` restricted to ``[start, end)``.
    """
    from repro.core.pipeline import BarrierPointPipeline
    from repro.experiments.common import _time_limit
    from repro.faults import maybe_inject

    (paths, start, end, machine, want_profiles, want_full, *rest) = task
    attempt = rest[0] if rest else 0
    timeout = rest[1] if len(rest) > 1 else None
    label = f"shard[{start}:{end}]"
    with _time_limit(timeout, label):
        maybe_inject("runner.task", key=label, attempt=attempt)
        chain = ShardChainReplay(list(paths))
        chain.set_fault_attempt(attempt)
        try:
            pipe = BarrierPointPipeline(machine)
            states: dict = {}
            if want_profiles:
                profiles = pipe.profile(chain)
                states["profiles"] = [
                    p.to_state() for p in profiles[start:end]
                ]
            if want_full:
                full = pipe.full_run(chain)
                state = full.to_state()
                state["regions"] = state["regions"][start:end]
                states["full"] = state
        finally:
            chain.close()
    return states


class ShardedReplay:
    """Fan shard replays across processes; merge results deterministically.

    One fan-out task per shard: the task for shard ``k`` replays the
    chain of shards ``0..k`` (prefix warming — see the module docstring)
    and returns only shard ``k``'s slice.  The parent concatenates the
    slices in shard order, which is bit-identical to the unsharded
    :class:`~repro.workloads.replay.ReplayWorkload` on every backend.

    Execution inherits the experiment runner's full fault tolerance via
    :class:`~repro.experiments.common.FaultTolerantFanout` — retries
    with deterministic backoff, per-task timeouts, pool respawn on
    worker death, serial fallback, and the ``runner.task`` /
    ``trace.read`` fault sites.  ``workers`` <= 1 replays serially
    in-process (still shard-at-a-time, still bit-identical).
    """

    def __init__(
        self, shard_paths, machine, workers: int = 0,
        retry=None, report=None,
    ) -> None:
        """Validate the chain and bind the evaluation machine.

        Args:
            shard_paths: Shard files in chain order; the chain must cover
                the whole parent trace (prefix chains are an internal
                detail of the workers).
            machine: Evaluation :class:`~repro.config.MachineConfig`;
                its core count must equal the trace's thread count.
            workers: Process count (<= 1 = serial in-process).
            retry: :class:`~repro.experiments.common.RetryPolicy`
                override (default: from the environment).
            report: :class:`~repro.experiments.common.RunReport` to
                accumulate into (default: a fresh one).
        """
        from repro.experiments.common import RetryPolicy, RunReport

        self.paths = tuple(str(pathlib.Path(p)) for p in shard_paths)
        chain = ShardChainReplay(self.paths)
        try:
            prov = chain._readers[-1].meta[SHARD_META_KEY]
            if prov["end"] != prov["parent_regions"]:
                raise TraceFormatError(
                    f"shard chain {list(self.paths)} stops at region "
                    f"{prov['end']} of {prov['parent_regions']}: a "
                    f"ShardedReplay needs the complete chain"
                )
            self.boundaries = chain.shard_boundaries
            self.workload_name = chain.name
            self.num_threads = chain.num_threads
            if machine.num_cores != chain.num_threads:
                raise ConfigError(
                    f"machine {machine.name!r} has {machine.num_cores} "
                    f"cores but the trace was recorded with "
                    f"{chain.num_threads} threads"
                )
        finally:
            chain.close()
        self.machine = machine
        self.workers = workers
        self.retry = retry if retry is not None else RetryPolicy.from_env()
        self.report = report if report is not None else RunReport()

    def run(
        self, want_profiles: bool = True, want_full: bool = False
    ) -> tuple:
        """Replay every shard and merge.

        Args:
            want_profiles: Collect functional profiles (BBVs/LDVs).
            want_full: Collect the detailed simulation result.

        Returns:
            ``(profiles, full)`` — a list of
            :class:`~repro.profiling.profiler.RegionProfile` (or
            ``None``) and a :class:`~repro.sim.machine.FullRunResult`
            (or ``None``), each bit-identical to the unsharded replay.

        Raises:
            RetryExhaustedError: When a shard task kept failing through
                its whole retry budget.
        """
        from repro.experiments.common import FanoutTask, FaultTolerantFanout
        from repro.profiling.profiler import RegionProfile
        from repro.sim.machine import FullRunResult
        from repro.store import ArtifactStore

        tasks = []
        for k in range(len(self.boundaries) - 1):
            start, end = self.boundaries[k], self.boundaries[k + 1]
            prefix = self.paths[: k + 1]
            key = ArtifactStore.derive_key(
                shards=[trace_fingerprint(p) for p in prefix],
                range=(start, end),
                machine=self.machine.fingerprint(),
                kinds=(want_profiles, want_full),
            )
            tasks.append(FanoutTask(
                key=key,
                label=f"shard[{start}:{end}]",
                args=(prefix, start, end, self.machine,
                      want_profiles, want_full),
                meta=(start, end),
            ))
        fanout = FaultTolerantFanout(
            fn=_replay_shard_task, workers=self.workers,
            retry=self.retry, report=self.report,
        )
        results = fanout.run(tasks)
        profiles: list | None = [] if want_profiles else None
        full_states: list = []
        for task in tasks:
            states = results[task.key]
            if want_profiles:
                profiles.extend(
                    RegionProfile.from_state(s) for s in states["profiles"]
                )
            if want_full:
                full_states.append(states["full"])
        full = None
        if want_full:
            merged = dict(full_states[0])
            merged["regions"] = tuple(
                r for state in full_states for r in state["regions"]
            )
            full = FullRunResult.from_state(merged)
        return profiles, full
