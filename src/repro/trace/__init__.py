"""Deterministic program-trace substrate.

Workloads are expressed as static :class:`~repro.trace.program.BasicBlock`
objects plus per-region, per-thread sequences of
:class:`~repro.trace.program.BlockExec` (a block run ``count`` times with an
explicit memory-line reference stream).  Every stream is a pure function of
``(workload, nthreads, region, thread)`` via :mod:`repro.trace.rng`, so the
profiler, the warmup capture pass and the detailed simulator all observe
identical executions — the property the BarrierPoint methodology relies on.
"""

from repro.trace.capture import (
    FORMAT_VERSION,
    TraceReader,
    inspect_trace,
    record_trace,
    trace_fingerprint,
    validate_trace,
)
from repro.trace.generators import ScenarioFuzzer
from repro.trace.program import (
    BasicBlock,
    BlockExec,
    RegionTrace,
    ThreadTrace,
    concat_refs,
)
from repro.trace.rng import stream_rng, stream_seed

__all__ = [
    "BasicBlock",
    "BlockExec",
    "FORMAT_VERSION",
    "RegionTrace",
    "ScenarioFuzzer",
    "ThreadTrace",
    "TraceReader",
    "concat_refs",
    "inspect_trace",
    "record_trace",
    "stream_rng",
    "stream_seed",
    "trace_fingerprint",
    "validate_trace",
]
