"""Deterministic program-trace substrate.

Workloads are expressed as static :class:`~repro.trace.program.BasicBlock`
objects plus per-region, per-thread sequences of
:class:`~repro.trace.program.BlockExec` (a block run ``count`` times with an
explicit memory-line reference stream).  Every stream is a pure function of
``(workload, nthreads, region, thread)`` via :mod:`repro.trace.rng`, so the
profiler, the warmup capture pass and the detailed simulator all observe
identical executions — the property the BarrierPoint methodology relies on.
"""

from repro.trace.capture import (
    FORMAT_VERSION,
    TraceReader,
    inspect_trace,
    record_trace,
    trace_fingerprint,
    validate_trace,
)
from repro.trace.generators import MAX_SEED, ScenarioFuzzer
from repro.trace.program import (
    BasicBlock,
    BlockExec,
    RegionTrace,
    ThreadTrace,
    concat_refs,
)
from repro.trace.rng import stream_rng, stream_seed

# Imported last: sharding/corpus pull in the workload layer, which itself
# imports the trace substrate above.
from repro.trace.corpus import (  # noqa: E402
    CorpusEntry,
    TraceCorpus,
    full_run_digest,
)
from repro.trace.shard import (  # noqa: E402
    ShardChainReplay,
    ShardPlan,
    ShardedReplay,
    shard_provenance,
    split_trace,
)

__all__ = [
    "BasicBlock",
    "BlockExec",
    "CorpusEntry",
    "FORMAT_VERSION",
    "MAX_SEED",
    "RegionTrace",
    "ScenarioFuzzer",
    "ShardChainReplay",
    "ShardPlan",
    "ShardedReplay",
    "ThreadTrace",
    "TraceCorpus",
    "TraceReader",
    "concat_refs",
    "full_run_digest",
    "inspect_trace",
    "record_trace",
    "shard_provenance",
    "split_trace",
    "stream_rng",
    "stream_seed",
    "trace_fingerprint",
    "validate_trace",
]
