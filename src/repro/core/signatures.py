"""Signature Vector construction (section III-A3/A4).

A region's Signature Vector (SV) is built from its per-thread BBVs and/or
LDVs: per-thread vectors are *concatenated* (not summed — section III-A4
chooses concatenation so heterogeneous threads land in different clusters),
each constituent part is L1-normalized individually, and BBV/LDV parts are
concatenated into the final SV.

LDV bucket weighting (section III-A3): bucket ``n`` may be scaled by
``2^(n/v)`` to emphasize long-latency reuse distances; ``v = None`` means
unweighted, and the paper evaluates v in {1, 2, 5} (Fig. 5's
``reuse_dist-1_2`` etc.), settling on unweighted as the default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ClusteringError
from repro.profiling.profiler import RegionProfile

_KINDS = ("bbv", "ldv", "combined")
_THREAD_MODES = ("concat", "sum")


@dataclass(frozen=True)
class SignatureConfig:
    """How to turn region profiles into signature vectors.

    ``kind``: which information the SV carries ('bbv', 'ldv', 'combined').
    ``ldv_weight_v``: None for unweighted LDV buckets, else the ``v`` in
    the ``2^(n/v)`` bucket weighting.
    ``thread_mode``: 'concat' (default, the paper's choice) or 'sum'.
    """

    kind: str = "combined"
    ldv_weight_v: float | None = None
    thread_mode: str = "concat"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ClusteringError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.thread_mode not in _THREAD_MODES:
            raise ClusteringError(
                f"thread_mode must be one of {_THREAD_MODES}, got {self.thread_mode!r}"
            )
        if self.ldv_weight_v is not None and self.ldv_weight_v <= 0:
            raise ClusteringError("ldv_weight_v must be positive or None")

    @property
    def label(self) -> str:
        """Figure-5-style label, e.g. ``combine-1_2``."""
        base = {"bbv": "bbv", "ldv": "reuse_dist", "combined": "combine"}[self.kind]
        if self.kind != "bbv" and self.ldv_weight_v is not None:
            return f"{base}-1_{int(self.ldv_weight_v)}"
        return base


#: The seven clustering variants evaluated in Fig. 5, by label.
SIGNATURE_VARIANTS: dict[str, SignatureConfig] = {
    "bbv": SignatureConfig(kind="bbv"),
    "reuse_dist": SignatureConfig(kind="ldv"),
    "reuse_dist-1_2": SignatureConfig(kind="ldv", ldv_weight_v=2),
    "reuse_dist-1_5": SignatureConfig(kind="ldv", ldv_weight_v=5),
    "combine": SignatureConfig(kind="combined"),
    "combine-1_2": SignatureConfig(kind="combined", ldv_weight_v=2),
    "combine-1_5": SignatureConfig(kind="combined", ldv_weight_v=5),
}


def _ldv_bucket_weights(num_buckets: int, v: float | None) -> np.ndarray:
    """Per-bucket scale factors ``2^(n/v)`` (1.0 when unweighted)."""
    if v is None:
        return np.ones(num_buckets, dtype=np.float64)
    exponents = np.arange(num_buckets, dtype=np.float64) / float(v)
    return np.exp2(exponents)


def _flatten_threads(per_thread: np.ndarray, mode: str) -> np.ndarray:
    """Combine a (threads, dims) matrix into one vector."""
    if mode == "sum":
        return per_thread.sum(axis=0)
    return per_thread.reshape(-1)


def _normalized(vec: np.ndarray) -> np.ndarray:
    total = vec.sum()
    return vec / total if total > 0 else vec


def signature_of(profile: RegionProfile, config: SignatureConfig) -> np.ndarray:
    """Build one region's SV from its profile."""
    parts: list[np.ndarray] = []
    if config.kind in ("bbv", "combined"):
        parts.append(_normalized(_flatten_threads(profile.bbv, config.thread_mode)))
    if config.kind in ("ldv", "combined"):
        weights = _ldv_bucket_weights(profile.ldv.shape[1], config.ldv_weight_v)
        weighted = profile.ldv * weights[None, :]
        parts.append(_normalized(_flatten_threads(weighted, config.thread_mode)))
    return np.concatenate(parts)


def build_signature_matrix(
    profiles: list[RegionProfile], config: SignatureConfig
) -> tuple[np.ndarray, np.ndarray]:
    """Signature matrix (one row per region) plus instruction-count weights.

    All profiles must come from the same run (same thread count and static
    block set), otherwise row dimensions would disagree.
    """
    if not profiles:
        raise ClusteringError("no profiles to build signatures from")
    rows = [signature_of(p, config) for p in profiles]
    dims = {r.shape[0] for r in rows}
    if len(dims) != 1:
        raise ClusteringError(
            f"inconsistent signature dimensionality across regions: {sorted(dims)}"
        )
    matrix = np.vstack(rows)
    weights = np.array([float(p.instructions) for p in profiles])
    if np.any(weights <= 0):
        raise ClusteringError("every region must have positive instruction count")
    return matrix, weights
