"""The BarrierPoint methodology (the paper's primary contribution).

Pipeline: profile -> build signature vectors -> cluster -> select
barrierpoints + multipliers -> (optionally) capture and replay warmup ->
simulate only the barrierpoints -> reconstruct whole-program metrics.
"""

from repro.core.pipeline import BarrierPointPipeline, PipelineResult
from repro.core.reconstruction import reconstruct_app
from repro.core.region_filter import CoalescedRegions, coalesce_regions
from repro.core.selection import (
    BarrierPoint,
    BarrierPointSelection,
    select_barrierpoints,
)
from repro.core.signatures import (
    SIGNATURE_VARIANTS,
    SignatureConfig,
    build_signature_matrix,
)
from repro.core.speedup import SpeedupReport, speedup_report

__all__ = [
    "BarrierPoint",
    "BarrierPointPipeline",
    "BarrierPointSelection",
    "CoalescedRegions",
    "PipelineResult",
    "SIGNATURE_VARIANTS",
    "SignatureConfig",
    "SpeedupReport",
    "build_signature_matrix",
    "coalesce_regions",
    "reconstruct_app",
    "select_barrierpoints",
    "speedup_report",
]
