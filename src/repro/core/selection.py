"""Barrierpoint selection and multipliers (sections III-B and III-D).

After clustering, each cluster is represented by one region — the
barrierpoint.  Its *multiplier* is the cluster's aggregate instruction
count divided by the representative's own instruction count, so that

    sum_{i in cluster j} insn_i  =  insn_j * mult_j .

Barrierpoints contributing less than 0.1% of total instructions are
classified *insignificant* (Table III) and may be skipped in detailed
simulation with negligible error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.simpoint import ClusteringResult
from repro.errors import ReconstructionError

SIGNIFICANCE_THRESHOLD = 1e-3  # 0.1% of total instructions (Table III)


@dataclass(frozen=True)
class BarrierPoint:
    """One selected representative inter-barrier region."""

    region_index: int
    cluster: int
    multiplier: float
    weight: float  # cluster's fraction of total instructions
    instructions: int  # representative region's own aggregate instructions

    @property
    def significant(self) -> bool:
        """True when the cluster carries at least 0.1% of instructions."""
        return self.weight >= SIGNIFICANCE_THRESHOLD


@dataclass(frozen=True)
class BarrierPointSelection:
    """The complete output of the selection stage for one application run."""

    workload_name: str
    num_threads: int
    signature_label: str
    num_regions: int
    total_instructions: float
    points: tuple[BarrierPoint, ...]
    labels: np.ndarray  # cluster id per region

    @property
    def significant_points(self) -> tuple[BarrierPoint, ...]:
        """Barrierpoints above the 0.1% significance threshold."""
        return tuple(p for p in self.points if p.significant)

    @property
    def insignificant_points(self) -> tuple[BarrierPoint, ...]:
        """Barrierpoints below the significance threshold."""
        return tuple(p for p in self.points if not p.significant)

    @property
    def num_barrierpoints(self) -> int:
        """Number of selected representatives (clusters)."""
        return len(self.points)

    @property
    def selected_regions(self) -> tuple[int, ...]:
        """Region indices of all barrierpoints, ascending."""
        return tuple(sorted(p.region_index for p in self.points))

    def point_for_region(self, region_index: int) -> BarrierPoint:
        """The barrierpoint representing ``region_index``'s cluster."""
        cluster = int(self.labels[region_index])
        for p in self.points:
            if p.cluster == cluster:
                return p
        raise ReconstructionError(
            f"no barrierpoint for cluster {cluster}"
        )  # pragma: no cover - selection always covers all clusters

    def coverage_of(self, points: tuple[BarrierPoint, ...]) -> float:
        """Fraction of total instructions represented by ``points``."""
        return sum(p.weight for p in points)


def select_barrierpoints(
    clustering: ClusteringResult,
    region_instructions: np.ndarray,
    workload_name: str,
    num_threads: int,
    signature_label: str,
) -> BarrierPointSelection:
    """Turn a clustering into barrierpoints with multipliers.

    ``region_instructions`` holds each region's aggregate instruction
    count (the clustering weights, unprojected).
    """
    insn = np.asarray(region_instructions, dtype=np.float64)
    n = insn.shape[0]
    if clustering.labels.shape != (n,):
        raise ReconstructionError(
            f"labels cover {clustering.labels.shape[0]} regions, expected {n}"
        )
    if np.any(insn <= 0):
        raise ReconstructionError("region instruction counts must be positive")
    total = float(insn.sum())
    points = []
    for cluster, rep in enumerate(clustering.representatives):
        members = clustering.members_of(cluster)
        cluster_insn = float(insn[members].sum())
        rep_insn = float(insn[rep])
        points.append(
            BarrierPoint(
                region_index=int(rep),
                cluster=cluster,
                multiplier=cluster_insn / rep_insn,
                weight=cluster_insn / total,
                instructions=int(insn[rep]),
            )
        )
    return BarrierPointSelection(
        workload_name=workload_name,
        num_threads=num_threads,
        signature_label=signature_label,
        num_regions=n,
        total_instructions=total,
        points=tuple(sorted(points, key=lambda p: p.region_index)),
        labels=clustering.labels.copy(),
    )


def reassign_multipliers(
    selection: BarrierPointSelection,
    target_instructions: np.ndarray,
    num_threads: int,
) -> BarrierPointSelection:
    """Recompute multipliers against another run's instruction counts.

    This is the cross-architecture application of Fig. 6: the cluster
    *assignment* (which regions are equivalent) transfers across core
    counts because regions are fixed units of work; only the instruction
    totals — and hence multipliers — are re-derived on the target run.
    """
    insn = np.asarray(target_instructions, dtype=np.float64)
    if insn.shape[0] != selection.num_regions:
        raise ReconstructionError(
            f"target run has {insn.shape[0]} regions, selection has "
            f"{selection.num_regions} (barrier count must be thread-invariant)"
        )
    if np.any(insn <= 0):
        raise ReconstructionError("region instruction counts must be positive")
    total = float(insn.sum())
    points = []
    for p in selection.points:
        members = np.flatnonzero(selection.labels == p.cluster)
        cluster_insn = float(insn[members].sum())
        rep_insn = float(insn[p.region_index])
        points.append(
            BarrierPoint(
                region_index=p.region_index,
                cluster=p.cluster,
                multiplier=cluster_insn / rep_insn,
                weight=cluster_insn / total,
                instructions=int(insn[p.region_index]),
            )
        )
    return BarrierPointSelection(
        workload_name=selection.workload_name,
        num_threads=num_threads,
        signature_label=selection.signature_label,
        num_regions=selection.num_regions,
        total_instructions=total,
        points=tuple(points),
        labels=selection.labels.copy(),
    )
