"""Whole-program runtime reconstruction (section III-D).

Within a cluster, per-instruction metrics (CPI, MPKI, ...) are assumed
constant, so any *additive* metric of the whole application is recovered as

    metric_app = sum_j  metric_j * mult_j

over the barrierpoints.  Setting every multiplier to the cluster's region
count instead of its instruction-scaled value gives the paper's
"without barrierpoint scaling" ablation (0.6% -> 19.4% average error).
"""

from __future__ import annotations

import numpy as np

from repro.core.selection import BarrierPointSelection
from repro.errors import ReconstructionError
from repro.sim.results import AppMetrics, RegionMetrics


def reconstruct_app(
    selection: BarrierPointSelection,
    point_metrics: dict[int, RegionMetrics],
    scaling: bool = True,
) -> AppMetrics:
    """Rebuild application metrics from per-barrierpoint measurements.

    ``point_metrics`` maps each selected region index to the metrics of
    its detailed simulation (from the full run under the perfect-warmup
    protocol, or from an independent warmed simulation).  With
    ``scaling=False`` the multiplier is replaced by the cluster's region
    count (the ablation of section VI-A).
    """
    missing = [
        p.region_index for p in selection.points
        if p.region_index not in point_metrics
    ]
    if missing:
        raise ReconstructionError(
            f"metrics missing for barrierpoints {missing}"
        )

    cycles = 0.0
    instructions = 0.0
    dram = 0.0
    freq = None
    for point in selection.points:
        metrics = point_metrics[point.region_index]
        if metrics.region_index != point.region_index:
            raise ReconstructionError(
                f"metrics for region {metrics.region_index} supplied under "
                f"key {point.region_index}"
            )
        if scaling:
            mult = point.multiplier
        else:
            mult = float(np.sum(selection.labels == point.cluster))
        cycles += metrics.cycles * mult
        instructions += metrics.instructions * mult
        dram += metrics.counters.dram_accesses * mult
        freq = metrics.frequency_ghz
    assert freq is not None
    return AppMetrics(
        instructions=instructions,
        cycles=cycles,
        dram_accesses=dram,
        frequency_ghz=freq,
        num_regions=selection.num_regions,
    )


def runtime_error_pct(estimated: AppMetrics, reference: AppMetrics) -> float:
    """Absolute % error in total execution time (Fig. 4/7, left)."""
    return abs(estimated.time_seconds - reference.time_seconds) \
        / reference.time_seconds * 100.0


def apki_difference(estimated: AppMetrics, reference: AppMetrics) -> float:
    """Absolute DRAM-APKI difference (Fig. 4/7, right)."""
    return abs(estimated.dram_apki - reference.dram_apki)


def reconstructed_ipc_trace(
    selection: BarrierPointSelection,
    full_regions: tuple[RegionMetrics, ...],
) -> np.ndarray:
    """Per-region aggregate IPC with each region replaced by its
    representative (the middle plot of Fig. 3)."""
    if len(full_regions) != selection.num_regions:
        raise ReconstructionError(
            f"full run has {len(full_regions)} regions, selection expects "
            f"{selection.num_regions}"
        )
    rep_ipc = {
        p.region_index: full_regions[p.region_index].aggregate_ipc
        for p in selection.points
    }
    out = np.empty(selection.num_regions, dtype=np.float64)
    for idx in range(selection.num_regions):
        point = selection.point_for_region(idx)
        out[idx] = rep_ipc[point.region_index]
    return out
