"""End-to-end BarrierPoint pipeline (the flow of Fig. 2).

Typical use::

    from repro.config import scaled, table1_8core, simpoint_defaults
    from repro.core import BarrierPointPipeline, SignatureConfig
    from repro.workloads import get_workload

    workload = get_workload("npb-ft", 8)
    pipe = BarrierPointPipeline(scaled(table1_8core(), 16))
    result = pipe.run(workload)          # select + simulate + reconstruct
    print(result.selection.num_barrierpoints, result.runtime_error_pct)

The pipeline exposes the intermediate stages too (profiling, selection,
perfect-warmup evaluation, independent warmed simulation) because the
evaluation harness exercises them separately per figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import MachineConfig, SimPointConfig, simpoint_defaults
from repro.core.reconstruction import (
    apki_difference,
    reconstruct_app,
    runtime_error_pct,
)
from repro.core.selection import (
    BarrierPointSelection,
    select_barrierpoints,
)
from repro.core.signatures import SignatureConfig, build_signature_matrix
from repro.clustering.simpoint import SimPointClusterer
from repro.errors import ConfigError
from repro.profiling.profiler import FunctionalProfiler, RegionProfile
from repro.sim.machine import FullRunResult, Machine
from repro.sim.results import AppMetrics, RegionMetrics
from repro.sim.warmup import ColdWarmup, MRUWarmup
from repro.workloads.base import Workload


@dataclass(frozen=True)
class PipelineResult:
    """Everything one full pipeline invocation produced."""

    selection: BarrierPointSelection
    reference: AppMetrics
    estimate: AppMetrics
    warmup_name: str
    point_metrics: dict[int, RegionMetrics]
    warmup_lines: dict[int, int] = field(default_factory=dict)

    @property
    def runtime_error_pct(self) -> float:
        """Absolute % error of estimated vs reference execution time."""
        return runtime_error_pct(self.estimate, self.reference)

    @property
    def apki_difference(self) -> float:
        """Absolute DRAM APKI difference, estimated vs reference."""
        return apki_difference(self.estimate, self.reference)


class BarrierPointPipeline:
    """Drives profile -> cluster -> simulate -> reconstruct."""

    def __init__(
        self,
        machine: MachineConfig,
        signature: SignatureConfig | None = None,
        simpoint: SimPointConfig | None = None,
    ) -> None:
        self.machine = machine
        self.signature = signature or SignatureConfig()
        self.simpoint = simpoint or simpoint_defaults()

    # -- stage 1: profiling -------------------------------------------------

    def profile(self, workload: Workload) -> list[RegionProfile]:
        """Functional profiling pass (BBVs + LDVs per region)."""
        self._check_threads(workload)
        return FunctionalProfiler(workload).profile()

    # -- stage 2: selection -------------------------------------------------

    def select(
        self, workload: Workload, profiles: list[RegionProfile] | None = None
    ) -> BarrierPointSelection:
        """Cluster region signatures and pick barrierpoints."""
        if profiles is None:
            profiles = self.profile(workload)
        matrix, weights = build_signature_matrix(profiles, self.signature)
        clustering = SimPointClusterer(self.simpoint).fit(matrix, weights)
        return select_barrierpoints(
            clustering,
            weights,
            workload_name=workload.name,
            num_threads=workload.num_threads,
            signature_label=self.signature.label,
        )

    # -- stage 3a: reference / perfect-warmup evaluation --------------------

    def full_run(self, workload: Workload) -> FullRunResult:
        """Detailed simulation of the complete benchmark (the reference)."""
        self._check_threads(workload)
        return Machine(self.machine).run_full(workload)

    def evaluate_perfect(
        self,
        selection: BarrierPointSelection,
        full: FullRunResult,
        scaling: bool = True,
    ) -> PipelineResult:
        """Score selection quality in isolation (section VI-A protocol).

        Barrierpoint metrics are taken from the full run, i.e. with
        perfectly warm state; the only error left is selection error.
        """
        point_metrics = {
            p.region_index: full.region(p.region_index)
            for p in selection.points
        }
        estimate = reconstruct_app(selection, point_metrics, scaling=scaling)
        return PipelineResult(
            selection=selection,
            reference=full.app,
            estimate=estimate,
            warmup_name="perfect",
            point_metrics=point_metrics,
        )

    # -- stage 3b: independent simulation with real warmup ------------------

    def evaluate_with_warmup(
        self,
        selection: BarrierPointSelection,
        workload: Workload,
        full: FullRunResult,
        warmup_kind: str = "mru",
    ) -> PipelineResult:
        """Simulate each barrierpoint independently after warmup (Fig. 7).

        Each barrierpoint starts from a fresh machine whose caches are
        rebuilt by MRU replay (or left cold for the ablation), exactly as a
        parallel, checkpoint-based deployment would run.
        """
        if warmup_kind not in ("mru", "cold"):
            raise ConfigError(f"unknown warmup kind {warmup_kind!r}")
        self._check_threads(workload)
        selected = set(selection.selected_regions)
        warmup_lines: dict[int, int] = {}
        warmups: dict[int, object] = {}
        if warmup_kind == "mru":
            # Per-core capture capacity equals the shared LLC a core sees
            # (Table I: one L3 per socket) — section IV's "largest total
            # shared LLC capacity visible to each core".
            capacity = self.machine.l3.num_lines
            captured = FunctionalProfiler(workload).capture_warmup(
                selected, capacity
            )
            for idx, data in captured.items():
                warmups[idx] = MRUWarmup(data)
                warmup_lines[idx] = data.total_lines
        else:
            for idx in selected:
                warmups[idx] = ColdWarmup()
                warmup_lines[idx] = 0

        machine = Machine(self.machine)
        point_metrics = {}
        for idx in sorted(selected):
            machine.reset()
            point_metrics[idx] = machine.simulate_barrierpoint(
                workload, idx, warmups[idx]
            )
        estimate = reconstruct_app(selection, point_metrics)
        return PipelineResult(
            selection=selection,
            reference=full.app,
            estimate=estimate,
            warmup_name=warmup_kind,
            point_metrics=point_metrics,
            warmup_lines=warmup_lines,
        )

    # -- convenience ---------------------------------------------------------

    def run(self, workload: Workload, warmup_kind: str = "mru") -> PipelineResult:
        """Full methodology: select, simulate with warmup, reconstruct."""
        selection = self.select(workload)
        full = self.full_run(workload)
        return self.evaluate_with_warmup(selection, workload, full, warmup_kind)

    def _check_threads(self, workload: Workload) -> None:
        if workload.num_threads > self.machine.num_cores:
            raise ConfigError(
                f"workload has {workload.num_threads} threads but machine "
                f"{self.machine.name!r} has {self.machine.num_cores} cores"
            )
