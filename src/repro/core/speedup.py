"""Simulation speedup and machine-resource accounting (section VI-D).

The paper uses aggregate instruction count as the proxy for simulation
work.  For a selection:

* serial speedup   = total instructions / sum of barrierpoint instructions
  ("back-to-back execution of barrierpoints" — the reduction in required
  simulation *resources*),
* parallel speedup = total instructions / max barrierpoint instructions
  (all barrierpoints simulated concurrently — the latency reduction),
* resource reduction = number of regions / number of barrierpoints
  (machines needed vs simulating every inter-barrier region in parallel,
  the comparison against Bryan et al.).

Warmup replay work can optionally be charged at one instruction-equivalent
per replayed line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.selection import BarrierPointSelection
from repro.errors import ReconstructionError


@dataclass(frozen=True)
class SpeedupReport:
    """Speedup/resource numbers for one (workload, core count) selection."""

    workload_name: str
    num_threads: int
    serial_speedup: float
    parallel_speedup: float
    resource_reduction: float
    num_regions: int
    num_barrierpoints: int


def speedup_report(
    selection: BarrierPointSelection,
    warmup_lines: dict[int, int] | None = None,
    significant_only: bool = False,
) -> SpeedupReport:
    """Compute the Fig. 9 quantities for one selection.

    ``warmup_lines`` maps barrierpoint region index to the number of
    replayed warmup lines, charged as one instruction-equivalent each;
    ``significant_only`` drops sub-0.1% barrierpoints (how one would run
    in practice).
    """
    points = (
        selection.significant_points if significant_only else selection.points
    )
    if not points:
        raise ReconstructionError("selection has no barrierpoints to account")
    costs = []
    for p in points:
        cost = float(p.instructions)
        if warmup_lines is not None:
            cost += float(warmup_lines.get(p.region_index, 0))
        costs.append(cost)
    total = selection.total_instructions
    return SpeedupReport(
        workload_name=selection.workload_name,
        num_threads=selection.num_threads,
        serial_speedup=total / sum(costs),
        parallel_speedup=total / max(costs),
        resource_reduction=selection.num_regions / len(points),
        num_regions=selection.num_regions,
        num_barrierpoints=len(points),
    )
