"""Cross-architecture barrierpoint transfer (section VI-A3, Fig. 6).

Barrierpoints are microarchitecture-independent units of work: a selection
made from one run's signatures (say, 8 threads) can be applied to a run on
a different machine (say, 32 cores) because the barrier structure — and
hence the region indexing — is thread-count-invariant.  Only the
multipliers are recomputed from the target run's instruction counts.

:func:`apply_selection_across` is the single-pair primitive;
:func:`transfer_cell` wraps it into one scored cell of the machines ×
machines transfer matrix the sweep subsystem (``repro sweep``,
:mod:`repro.experiments.sweep`) evaluates per workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import BarrierPointPipeline, PipelineResult
from repro.core.selection import BarrierPointSelection, reassign_multipliers
from repro.sim.machine import FullRunResult


def apply_selection_across(
    selection: BarrierPointSelection,
    target_full: FullRunResult,
    target_pipeline: BarrierPointPipeline,
) -> PipelineResult:
    """Evaluate a source-architecture selection on a target run.

    ``selection`` came from clustering signatures collected at one core
    count; ``target_full`` is the detailed reference at another.  Returns
    a perfect-warmup evaluation on the target machine using the source's
    cluster assignment, with multipliers recomputed from the target's
    per-region instruction counts.
    """
    target_insn = np.array(
        [float(r.instructions) for r in target_full.regions]
    )
    transferred = reassign_multipliers(
        selection, target_insn, num_threads=target_full.num_threads
    )
    return target_pipeline.evaluate_perfect(transferred, target_full)


@dataclass(frozen=True)
class TransferCell:
    """One scored (workload, source machine, target machine) transfer.

    ``error_pct`` is the absolute whole-program runtime error of the
    transferred estimate against the target machine's detailed reference;
    ``native`` marks the matrix diagonal (selection applied to the machine
    whose profile produced it).
    """

    workload: str
    source_machine: str
    target_machine: str
    source_threads: int
    target_threads: int
    error_pct: float
    apki_difference: float
    num_barrierpoints: int

    @property
    def native(self) -> bool:
        """Whether source and target are the same machine."""
        return self.source_machine == self.target_machine


def transfer_cell(
    selection: BarrierPointSelection,
    source_machine: str,
    target_machine: str,
    target_full: FullRunResult,
    target_pipeline: BarrierPointPipeline,
) -> TransferCell:
    """Score one (source, target) machine pair of the sweep matrix.

    Args:
        selection: Barrierpoints chosen from the source machine's profile.
        source_machine: Registry name the selection came from (labeling).
        target_machine: Registry name of the evaluation machine.
        target_full: Detailed reference run on the target machine.
        target_pipeline: Pipeline bound to the target machine.

    Returns:
        The scored cell.
    """
    result = apply_selection_across(selection, target_full, target_pipeline)
    return TransferCell(
        workload=target_full.workload_name,
        source_machine=source_machine,
        target_machine=target_machine,
        source_threads=selection.num_threads,
        target_threads=target_full.num_threads,
        error_pct=result.runtime_error_pct,
        apki_difference=result.apki_difference,
        num_barrierpoints=result.selection.num_barrierpoints,
    )
