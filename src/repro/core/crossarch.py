"""Cross-architecture barrierpoint transfer (section VI-A3, Fig. 6).

Barrierpoints are microarchitecture-independent units of work: a selection
made from one run's signatures (say, 8 threads) can be applied to a run on
a different machine (say, 32 cores) because the barrier structure — and
hence the region indexing — is thread-count-invariant.  Only the
multipliers are recomputed from the target run's instruction counts.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import BarrierPointPipeline, PipelineResult
from repro.core.selection import BarrierPointSelection, reassign_multipliers
from repro.sim.machine import FullRunResult


def apply_selection_across(
    selection: BarrierPointSelection,
    target_full: FullRunResult,
    target_pipeline: BarrierPointPipeline,
) -> PipelineResult:
    """Evaluate a source-architecture selection on a target run.

    ``selection`` came from clustering signatures collected at one core
    count; ``target_full`` is the detailed reference at another.  Returns
    a perfect-warmup evaluation on the target machine using the source's
    cluster assignment, with multipliers recomputed from the target's
    per-region instruction counts.
    """
    target_insn = np.array(
        [float(r.instructions) for r in target_full.regions]
    )
    transferred = reassign_multipliers(
        selection, target_insn, num_threads=target_full.num_threads
    )
    return target_pipeline.evaluate_perfect(transferred, target_full)
