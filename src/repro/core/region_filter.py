"""Region coalescing — the paper's npb-ua future-work extension.

Section V excludes npb-ua because it "generates a very large number of
barriers which makes it difficult to analyze ... it might need an
extension to filter or combine regions before processing by the
BarrierPoint methodology".  This module is that extension: consecutive
inter-barrier regions are coalesced into *super-regions* until each
carries at least a minimum share of the program's instructions, and the
pipeline then clusters the super-regions instead.

Coalescing preserves everything the methodology needs:

* signatures add — BBVs and LDVs are additive counters, so a
  super-region's profile is the element-wise sum of its members', and
* units of work survive — a super-region is itself barrier-delimited
  (it starts and ends at a barrier), so checkpointing, warmup capture and
  independent simulation work unchanged, treating the group's regions as
  one back-to-back unit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.profiling.profiler import RegionProfile


@dataclass(frozen=True)
class CoalescedRegions:
    """Result of coalescing: super-region profiles plus the index map.

    ``groups[i]`` is the tuple of original region indices forming
    super-region ``i``; ``profiles[i]`` is its summed profile, indexed by
    super-region number (``region_index`` is the group's *first* original
    region — the barrier at which its checkpoint would be taken).
    """

    profiles: list[RegionProfile]
    groups: tuple[tuple[int, ...], ...]

    @property
    def num_super_regions(self) -> int:
        """Number of super-regions after coalescing."""
        return len(self.groups)

    def group_of(self, region_index: int) -> int:
        """Super-region number containing an original region."""
        for i, group in enumerate(self.groups):
            if region_index in group:
                return i
        raise WorkloadError(f"region {region_index} not covered by any group")


def _merge(profiles: list[RegionProfile]) -> RegionProfile:
    first = profiles[0]
    if len(profiles) == 1:
        return first
    bbv = first.bbv.copy()
    ldv = first.ldv.copy()
    per_thread = np.asarray(first.per_thread_instructions, dtype=np.int64)
    instructions = first.instructions
    for p in profiles[1:]:
        bbv += p.bbv
        ldv += p.ldv
        per_thread = per_thread + np.asarray(
            p.per_thread_instructions, dtype=np.int64)
        instructions += p.instructions
    return RegionProfile(
        region_index=first.region_index,
        phase=f"{first.phase}+{len(profiles) - 1}",
        instructions=instructions,
        per_thread_instructions=tuple(int(v) for v in per_thread),
        bbv=bbv,
        ldv=ldv,
    )


def coalesce_regions(
    profiles: list[RegionProfile],
    min_weight: float = 1e-4,
    max_group: int | None = None,
) -> CoalescedRegions:
    """Greedily merge consecutive regions below ``min_weight``.

    A new super-region is closed as soon as its accumulated instruction
    count reaches ``min_weight`` x total instructions (or ``max_group``
    members).  Regions already above the threshold pass through untouched,
    so well-behaved workloads are unaffected and only pathological
    many-tiny-barrier programs (npb-ua) get compressed.
    """
    if not profiles:
        raise WorkloadError("no profiles to coalesce")
    if not 0.0 < min_weight < 1.0:
        raise WorkloadError(f"min_weight must be in (0, 1), got {min_weight}")
    indices = [p.region_index for p in profiles]
    if indices != list(range(len(profiles))):
        raise WorkloadError("profiles must cover regions 0..n-1 in order")

    total = float(sum(p.instructions for p in profiles))
    threshold = total * min_weight
    merged: list[RegionProfile] = []
    groups: list[tuple[int, ...]] = []
    pending: list[RegionProfile] = []
    pending_insn = 0.0
    for profile in profiles:
        pending.append(profile)
        pending_insn += profile.instructions
        full = max_group is not None and len(pending) >= max_group
        if pending_insn >= threshold or full:
            merged.append(_merge(pending))
            groups.append(tuple(p.region_index for p in pending))
            pending = []
            pending_insn = 0.0
    if pending:
        # Tail underflow: fold into the previous super-region if any.
        if merged:
            last_group = groups.pop()
            last_members = [profiles[i] for i in last_group] + pending
            merged[-1] = _merge(last_members)
            groups.append(tuple(p.region_index for p in last_members))
        else:
            merged.append(_merge(pending))
            groups.append(tuple(p.region_index for p in pending))
    return CoalescedRegions(profiles=merged, groups=tuple(groups))
