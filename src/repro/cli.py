"""The unified ``repro`` command-line interface.

One console entry point drives the whole reproduction (see ``docs/cli.md``
for the user guide):

* ``repro run`` — regenerate the evaluation battery (all figures/tables),
  parallel and incremental via the artifact store;
* ``repro figures`` — same battery, but write each figure to a file;
* ``repro sweep`` — the cross-architecture transfer sweep (machines ×
  workloads matrix over the machine registry);
* ``repro machines`` — list the machine registry;
* ``repro trace`` — record, replay, inspect, and fuzz ``.rpt`` program
  traces (see ``docs/trace-format.md``);
* ``repro bench`` — run the pytest benchmark harness (perf + figures)
  with the environment knobs set from flags;
* ``repro clean`` — delete the artifact store, or garbage-collect it
  (``--gc``: orphan temp reaping, TTL expiry, LRU size quota — see
  ``docs/robustness.md``);
* ``repro serve`` — the long-lived experiment service: an HTTP JSON API
  with request coalescing, a crash-tolerant job journal (``--resume``),
  and the janitor on a background cadence (see ``docs/serve.md``).

Installed as ``repro`` by ``pip install -e .``; equivalently available
without installation as ``PYTHONPATH=src python -m repro ...``.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys

from repro.errors import ConfigError, ReproError
from repro.experiments import battery
from repro.machines import machine_summary
from repro.store import ArtifactStore, janitor
from repro.util.tables import format_table


def _runner_or_error(
    args: argparse.Namespace, parser: argparse.ArgumentParser
):
    """Build the runner, turning config errors into clean CLI errors."""
    try:
        return battery.runner_from_args(args)
    except ConfigError as exc:
        parser.error(str(exc))


def bench_targets(bench_dir: pathlib.Path) -> tuple[str, ...]:
    """``repro bench`` target shorthands, derived from the benchmark files.

    Args:
        bench_dir: The ``benchmarks/`` directory of a checkout.

    Returns:
        One shorthand per ``test_<name>.py`` file (``perf``, ``fig1``, ...).
    """
    return tuple(
        sorted(p.stem.removeprefix("test_") for p in bench_dir.glob("test_*.py"))
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level ``repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BarrierPoint reproduction: experiments, figures, "
                    "benchmarks, and the artifact store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run", help="regenerate the evaluation battery (stdout)"
    )
    battery.add_runner_options(run_p)

    figures_p = sub.add_parser(
        "figures", help="regenerate figures/tables into files"
    )
    battery.add_runner_options(figures_p)
    figures_p.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("benchmarks/results"),
        help="output directory (default benchmarks/results)",
    )

    sweep_p = sub.add_parser(
        "sweep", help="cross-architecture transfer sweep (machines x workloads)"
    )
    battery.add_runner_options(sweep_p)
    sweep_p.add_argument(
        "--workloads", type=str, default="",
        help="comma-separated workload subset (default: the full suite)",
    )
    sweep_p.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="also write the sweep figure to this file",
    )

    machines_p = sub.add_parser(
        "machines", help="list the machine registry"
    )
    machines_p.add_argument(
        "--fingerprints", action="store_true",
        help="include each machine's artifact-store fingerprint",
    )
    machines_p.add_argument(
        "--show", metavar="NAME", default=None,
        help="dump one machine's fully resolved (inheritance-merged, "
             "validated) spec as JSON instead of the listing",
    )

    trace_p = sub.add_parser(
        "trace", help="record, replay, inspect, and fuzz .rpt traces"
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)

    record_p = trace_sub.add_parser(
        "record", help="snapshot a workload's trace into a .rpt file"
    )
    record_p.add_argument(
        "workload", help="workload name (registry, fuzz-<seed>, or "
                         "trace:<path> to re-record a replay)",
    )
    record_p.add_argument(
        "--threads", type=int, default=None,
        help="thread count to record (default 8; for a trace:<path> "
             "input, the recording's own thread count)",
    )
    record_p.add_argument(
        "--scale", type=float, default=None,
        help="workload scale factor (default 1.0; trace:<path> inputs "
             "always keep their recorded scale)",
    )
    record_p.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="output path (default <name>-<threads>t-<scale>.rpt)",
    )
    record_p.add_argument(
        "--store", action="store_true",
        help="also copy the trace into the artifact store (content-keyed)",
    )

    replay_p = trace_sub.add_parser(
        "replay", help="replay a .rpt trace through the profiler/simulator"
    )
    replay_p.add_argument("path", type=pathlib.Path, help="the .rpt file")
    replay_p.add_argument(
        "--machine", type=str, default=None,
        help="registry machine to simulate on (default: the evaluation "
             "machine matching the recorded thread count)",
    )
    replay_p.add_argument(
        "--full", action="store_true",
        help="also run the detailed full simulation (not just profiling)",
    )
    replay_p.add_argument(
        "--verify", action="store_true",
        help="regenerate the original workload and assert the replay is "
             "bit-identical (profiles and detailed run)",
    )

    inspect_p = trace_sub.add_parser(
        "inspect", help="validate a .rpt file and print its metadata"
    )
    inspect_p.add_argument("path", type=pathlib.Path, help="the .rpt file")
    inspect_p.add_argument(
        "--chunks", action="store_true",
        help="also list per-region chunk sizes and checksums",
    )

    fuzz_p = trace_sub.add_parser(
        "fuzz", help="emit a seeded randomized scenario as a .rpt trace"
    )
    fuzz_p.add_argument("seed", type=int, help="scenario seed (>= 0)")
    fuzz_p.add_argument(
        "--threads", type=int, default=8,
        help="thread count to record (default 8)",
    )
    fuzz_p.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale factor (default 1.0)",
    )
    fuzz_p.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="output path (default fuzz-<seed>-<threads>t-<scale>.rpt)",
    )
    fuzz_p.add_argument(
        "--store", action="store_true",
        help="also copy the trace into the artifact store (content-keyed)",
    )

    corpus_p = trace_sub.add_parser(
        "corpus",
        help="store-backed trace corpus: record, list, replay, verify",
    )
    corpus_sub = corpus_p.add_subparsers(dest="corpus_command", required=True)

    corpus_record_p = corpus_sub.add_parser(
        "record", help="batch-record fuzzer seeds into the corpus"
    )
    corpus_record_p.add_argument(
        "seeds",
        help="seed spec: a single seed (7), an inclusive range (1-4), "
             "or a comma list (3,5,9)",
    )
    corpus_record_p.add_argument(
        "--threads", type=int, default=8,
        help="thread count to record (default 8)",
    )
    corpus_record_p.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale factor (default 1.0)",
    )
    corpus_record_p.add_argument(
        "--name", default="default",
        help="corpus name (default 'default')",
    )

    corpus_list_p = corpus_sub.add_parser(
        "list", help="list the corpus index"
    )
    corpus_list_p.add_argument(
        "--name", default="default",
        help="corpus name (default 'default')",
    )

    corpus_replay_p = corpus_sub.add_parser(
        "replay", help="sharded parallel replay of one corpus entry"
    )
    corpus_replay_p.add_argument(
        "entry", help="entry label (e.g. fuzz-11/2t) or workload name",
    )
    corpus_replay_p.add_argument(
        "--shards", type=int, default=3,
        help="shard count (default 3, capped at the region count)",
    )
    corpus_replay_p.add_argument(
        "--workers", type=int, default=0,
        help="process count for the shard fan-out (default 0 = serial)",
    )
    corpus_replay_p.add_argument(
        "--backend", default="inclusive",
        help="hierarchy backend to replay on (default inclusive)",
    )
    corpus_replay_p.add_argument(
        "--full", action="store_true",
        help="also run the detailed full simulation (merged across shards)",
    )
    corpus_replay_p.add_argument(
        "--name", default="default",
        help="corpus name (default 'default')",
    )

    corpus_verify_p = corpus_sub.add_parser(
        "verify",
        help="corpus-wide differential-conformance sweep "
             "(every entry x every backend; exit 1 on any mismatch)",
    )
    corpus_verify_p.add_argument(
        "--shards", type=int, default=3,
        help="shard count of the sharded replay leg (default 3)",
    )
    corpus_verify_p.add_argument(
        "--workers", type=int, default=0,
        help="process count for the sweep fan-out (default 0 = serial)",
    )
    corpus_verify_p.add_argument(
        "--name", default="default",
        help="corpus name (default 'default')",
    )

    bench_p = sub.add_parser(
        "bench", help="run the pytest benchmark harness"
    )
    bench_p.add_argument(
        "targets", nargs="*", metavar="TARGET",
        help="benchmark subset — one name per benchmarks/test_<name>.py "
             "file, e.g. perf, fig1, table3 (default: everything)",
    )
    bench_p.add_argument(
        "--scale", type=float, default=None,
        help="sets REPRO_BENCH_SCALE (default 0.5)",
    )
    bench_p.add_argument(
        "--workloads", type=str, default=None,
        help="sets REPRO_BENCH_WORKLOADS (comma-separated subset)",
    )
    bench_p.add_argument(
        "--min-speedup", type=float, default=None,
        help="sets REPRO_BENCH_MIN_SPEEDUP (perf benchmark floor)",
    )
    bench_p.add_argument(
        "--repeat", type=int, default=None,
        help="sets REPRO_BENCH_REPEAT (best-of-N timing)",
    )
    bench_p.add_argument(
        "--jit", action="store_true",
        help="sets REPRO_JIT=on — require the numba kernel tier and "
             "report per-tier timings (fails loudly without numba)",
    )

    clean_p = sub.add_parser(
        "clean", help="delete or garbage-collect the artifact store"
    )
    clean_p.add_argument(
        "--dry-run", action="store_true",
        help="report what would be freed without deleting",
    )
    clean_p.add_argument(
        "--gc", action="store_true",
        help="janitor sweep instead of full deletion: reap orphan temp "
             "files, expire by TTL, evict to the size quota",
    )
    clean_p.add_argument(
        "--ttl", type=str, default=None,
        help="with --gc: expire artifacts older than this (e.g. 3600, "
             "90m, 12h, 7d)",
    )
    clean_p.add_argument(
        "--max-bytes", type=str, default=None,
        help="with --gc: evict least-recently-used artifacts until the "
             "store fits (e.g. 1024, 512K, 100M, 2G)",
    )
    clean_p.add_argument(
        "--tmp-grace", type=str, default=None,
        help="with --gc: age before an orphan temp file is reaped "
             f"(default {janitor.DEFAULT_TMP_GRACE_SECONDS:g}s)",
    )
    clean_p.add_argument(
        "--no-reap-tmp", action="store_true",
        help="with --gc: leave orphan temp files alone",
    )

    serve_p = sub.add_parser(
        "serve",
        help="long-lived experiment service (HTTP JSON API with request "
             "coalescing — see docs/serve.md)",
    )
    serve_p.add_argument(
        "--host", default="127.0.0.1",
        help="bind host (default 127.0.0.1)",
    )
    serve_p.add_argument(
        "--port", type=int, default=8642,
        help="bind port (default 8642; 0 = ephemeral)",
    )
    serve_p.add_argument(
        "--workers", type=int, default=1,
        help="worker threads executing jobs (default 1)",
    )
    serve_p.add_argument(
        "--resume", action="store_true",
        help="restore the journaled job backlog of a previous (killed or "
             "drained) server before accepting requests",
    )
    serve_p.add_argument(
        "--ttl", type=str, default=None,
        help="janitor TTL: expire store artifacts older than this "
             "(e.g. 3600, 90m, 12h, 7d)",
    )
    serve_p.add_argument(
        "--max-bytes", type=str, default=None,
        help="janitor quota: evict least-recently-used artifacts until "
             "the store fits (e.g. 512K, 100M, 2G)",
    )
    serve_p.add_argument(
        "--gc-interval", type=float, default=None,
        help="seconds between janitor sweeps (default 300; sweeps only "
             "run when --ttl or --max-bytes is given)",
    )
    serve_p.add_argument(
        "--ready-file", type=pathlib.Path, default=None,
        help="write the bound {host, port, pid} as JSON here once "
             "listening (for harnesses using --port 0)",
    )
    serve_p.add_argument(
        "--quiet", action="store_true",
        help="suppress the structured request log",
    )
    return parser


def cmd_run(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """``repro run``: print configs and every regenerated figure."""
    runner = _runner_or_error(args, parser)
    selected = battery.select_experiments(parser, args.only)
    print(battery.show_configs())
    print()

    def _report(name: str, output: str, seconds: float, cached: bool) -> None:
        source = "store" if cached else "computed"
        print(output)
        print(f"[{name} regenerated in {seconds:.1f}s ({source})]")
        print()

    battery.run_experiments(runner, selected, on_result=_report)
    _print_run_report(runner)
    return 0


def _print_run_report(runner) -> None:
    """Print the structured recovery/failure report when noteworthy."""
    if runner.report.noteworthy():
        print(runner.report.render())


def cmd_figures(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """``repro figures``: write each regenerated figure to ``--out``."""
    runner = _runner_or_error(args, parser)
    selected = battery.select_experiments(parser, args.only)
    args.out.mkdir(parents=True, exist_ok=True)

    def _report(name: str, output: str, seconds: float, cached: bool) -> None:
        path = args.out / f"{name}.txt"
        path.write_text(output + "\n")
        source = "store" if cached else "computed"
        print(f"{path}  [{seconds:.1f}s, {source}]")

    battery.run_experiments(runner, selected, on_result=_report)
    _print_run_report(runner)
    return 0


def cmd_sweep(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """``repro sweep``: the machines × workloads transfer-error matrix."""
    runner = _runner_or_error(args, parser)
    if args.workloads:
        from repro.workloads import (
            WORKLOAD_NAMES,
            is_dynamic_workload,
            registered_workloads,
        )

        selected = tuple(
            name.strip() for name in args.workloads.split(",") if name.strip()
        )
        known = registered_workloads()
        unknown = [
            w for w in selected if w not in known and not is_dynamic_workload(w)
        ]
        if unknown:
            extensions = sorted(set(known) - set(WORKLOAD_NAMES))
            parser.error(
                f"unknown workloads {unknown}; paper suite: "
                f"{sorted(WORKLOAD_NAMES)}; extension workloads: "
                f"{extensions}; dynamic names: fuzz-<seed>, trace:<path>"
            )
        runner.benchmarks = selected

    def _report(name: str, output: str, seconds: float, cached: bool) -> None:
        source = "store" if cached else "computed"
        print(output)
        print(f"[{name} regenerated in {seconds:.1f}s ({source})]")
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(output + "\n")
            print(f"written to {args.out}")

    battery.run_experiments(runner, ["sweep"], on_result=_report)
    _print_run_report(runner)
    return 0


def cmd_machines(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """``repro machines``: print the registry, or one resolved spec."""
    if args.show is not None:
        import json

        from repro.machines import resolved_spec

        print(json.dumps(resolved_spec(args.show), indent=2, sort_keys=True))
        return 0
    rows = machine_summary()
    headers = [
        "machine", "cores", "sockets", "topology", "L3", "DRAM", "hierarchy",
    ]
    cells = [
        [r["name"], r["cores"], r["sockets"], r["topology"], r["l3"],
         r["dram"], r["hierarchy"]]
        for r in rows
    ]
    if args.fingerprints:
        headers.append("fingerprint")
        for row, r in zip(cells, rows):
            row.append(r["fingerprint"])
    headers.append("description")
    for row, r in zip(cells, rows):
        row.append(r["description"])
    print(format_table(headers, cells, title="Machine registry"))
    return 0


def _default_trace_out(name: str, threads: int, scale: float) -> pathlib.Path:
    """Default ``.rpt`` path for a recording (safe filename)."""
    safe = name.replace(":", "_").replace("/", "_")
    return pathlib.Path(f"{safe}-{threads}t-{scale:g}.rpt")


def _record_workload(name: str, threads: int | None, scale: float | None,
                     out: pathlib.Path | None, to_store: bool) -> int:
    """Shared implementation of ``trace record`` and ``trace fuzz``.

    ``threads``/``scale`` of ``None`` mean "the default": 8 / 1.0 for
    generated workloads, the recording's own coordinates for
    ``trace:<path>`` inputs (a re-record inherits what was recorded).
    """
    from repro.trace.capture import read_file_crc, record_trace, store_trace
    from repro.workloads import TRACE_NAME_PREFIX, get_workload
    from repro.workloads.replay import ReplayWorkload

    if name.startswith(TRACE_NAME_PREFIX):
        # Direct construction so an *explicitly typed* --threads/--scale
        # that contradicts the recording errors loudly instead of being
        # silently ignored; omitted flags inherit the recording.
        workload = ReplayWorkload(
            name[len(TRACE_NAME_PREFIX):],
            num_threads=threads, scale=scale,
        )
    else:
        workload = get_workload(
            name, 8 if threads is None else threads,
            1.0 if scale is None else scale,
        )
    path = out if out is not None else _default_trace_out(
        name, workload.num_threads, workload.scale
    )
    # Recording consumes each region exactly once — memoizing them would
    # hold the whole trace in memory for nothing.
    workload.disable_trace_cache()
    record_trace(workload, path)
    print(
        f"recorded {workload.name}: {workload.num_regions} regions x "
        f"{workload.num_threads} threads -> {path} "
        f"({path.stat().st_size} bytes, crc {read_file_crc(path):08x})"
    )
    if to_store:
        stored = store_trace(ArtifactStore(), path)
        if stored is None:
            print("artifact store is disabled (REPRO_STORE=0); not stored")
        else:
            print(f"stored as {stored}")
    return 0


def cmd_trace_record(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """``repro trace record``: snapshot a workload's trace to disk."""
    return _record_workload(
        args.workload, args.threads, args.scale, args.out, args.store
    )


def cmd_trace_fuzz(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """``repro trace fuzz``: record a seeded randomized scenario."""
    from repro.trace.generators import ScenarioFuzzer

    fuzzer = ScenarioFuzzer(args.seed)
    spec = fuzzer.spec()
    print(
        f"scenario {fuzzer.name}: {len(spec.phases)} phases "
        f"({', '.join(p.pattern for p in spec.phases)}), "
        f"{len(spec.schedule)} regions"
    )
    return _record_workload(
        fuzzer.name, args.threads, args.scale, args.out, args.store
    )


def _replay_machine(name: str | None, num_threads: int):
    """Resolve the (scaled) machine a replay simulates on."""
    from repro.experiments.common import sweep_machine
    from repro.machines import machine_names

    if name is None:
        name = "table1-8core" if num_threads <= 8 else "table1-32core"
    if name not in machine_names():
        raise ConfigError(
            f"unknown machine {name!r}; known: {list(machine_names())}"
        )
    machine = sweep_machine(name)
    if machine.num_cores < num_threads:
        raise ConfigError(
            f"machine {name!r} has {machine.num_cores} cores but the trace "
            f"was recorded with {num_threads} threads; pick a machine with "
            f"at least {num_threads} cores (see `repro machines`)"
        )
    return machine


def cmd_trace_replay(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """``repro trace replay``: drive a recorded trace through the pipeline."""
    from repro.core.pipeline import BarrierPointPipeline
    from repro.profiling.profiler import profiles_digest
    from repro.workloads import get_workload
    from repro.workloads.replay import ReplayWorkload

    replay = ReplayWorkload(args.path)
    machine = _replay_machine(args.machine, replay.num_threads)
    pipe = BarrierPointPipeline(machine)
    profiles = pipe.profile(replay)
    print(
        f"replayed {replay.name} from {args.path}: "
        f"{replay.num_regions} regions x {replay.num_threads} threads, "
        f"{sum(p.instructions for p in profiles)} instructions "
        f"on {machine.name}"
    )
    print(f"profile digest: {profiles_digest(profiles)}")
    full = None
    if args.full or args.verify:
        full = pipe.full_run(replay)
        app = full.app
        print(
            f"full run: {app.cycles:.0f} cycles, "
            f"IPC {app.instructions / app.cycles:.3f}"
        )
    if args.verify:
        fresh = get_workload(replay.name, replay.num_threads, replay.scale)
        fresh_profiles = pipe.profile(fresh)
        if profiles_digest(fresh_profiles) != profiles_digest(profiles):
            print("VERIFY FAILED: replayed profiles differ from fresh "
                  "generation", file=sys.stderr)
            return 1
        fresh_full = pipe.full_run(fresh)
        for a, b in zip(fresh_full.regions, full.regions):
            if a.to_state() != b.to_state():
                print(
                    f"VERIFY FAILED: region {a.region_index} detailed "
                    f"metrics differ between replay and fresh generation",
                    file=sys.stderr,
                )
                return 1
        print(
            f"verify OK: replay is bit-identical to fresh generation "
            f"({len(profiles)} regions, {machine.name})"
        )
    return 0


def cmd_trace_inspect(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """``repro trace inspect``: validate a trace and print its metadata."""
    from repro.trace.capture import trace_summary, validate_trace

    reader = validate_trace(args.path)
    try:
        info = trace_summary(reader)
        rows = [[k, str(info[k])] for k in (
            "path", "file_bytes", "version", "workload", "input_size",
            "scale", "num_threads", "num_regions", "num_blocks",
            "chunk_payload_bytes", "file_crc", "fingerprint",
            "code_fingerprint",
        )]
        print(format_table(["field", "value"], rows,
                           title="Trace (all checksums verified)"))
        if args.chunks:
            chunk_rows = [
                [str(region), str(length), f"{crc:08x}"]
                for region, length, crc in reader.iter_chunk_info()
            ]
            print(format_table(
                ["region", "payload bytes", "crc32"], chunk_rows,
                title="Chunks",
            ))
    finally:
        reader.close()
    return 0


def _parse_seed_spec(spec: str) -> list[int]:
    """Parse a corpus seed spec: ``7``, ``1-4`` (inclusive), or ``3,5,9``.

    Args:
        spec: The seed specification string.

    Returns:
        The seed list, in spec order.

    Raises:
        ConfigError: On a malformed spec.
    """
    seeds: list[int] = []
    try:
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            lo, dash, hi = part.partition("-")
            if dash:
                lo, hi = int(lo), int(hi)
                if hi < lo:
                    raise ConfigError(
                        f"seed range {part!r} is empty ({hi} < {lo})"
                    )
                seeds.extend(range(lo, hi + 1))
            else:
                seeds.append(int(part))
    except ValueError:
        raise ConfigError(
            f"bad seed spec {spec!r}: use a seed (7), an inclusive "
            f"range (1-4), or a comma list (3,5,9)"
        ) from None
    if not seeds:
        raise ConfigError(f"seed spec {spec!r} names no seeds")
    return seeds


def _open_corpus(name: str):
    """Open a named corpus over the default artifact store."""
    from repro.trace.corpus import TraceCorpus

    return TraceCorpus(ArtifactStore(), name=name)


def _find_corpus_entry(corpus, wanted: str):
    """Resolve one corpus entry by label or workload name, loudly."""
    entries = corpus.entries()
    matches = [
        e for e in entries if wanted in (e.label, e.workload)
    ]
    if len(matches) == 1:
        return matches[0]
    known = [e.label for e in entries]
    if not matches:
        raise ConfigError(
            f"corpus {corpus.name!r} has no entry {wanted!r}; "
            f"entries: {known or '(none — record some first)'}"
        )
    raise ConfigError(
        f"{wanted!r} is ambiguous in corpus {corpus.name!r}: "
        f"{[e.label for e in matches]}; use the full label"
    )


def cmd_trace_corpus_record(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """``repro trace corpus record``: batch-record fuzz seeds."""
    corpus = _open_corpus(args.name)
    seeds = _parse_seed_spec(args.seeds)
    entries = corpus.record_fuzz_range(
        seeds, num_threads=args.threads, scale=args.scale
    )
    for entry in entries:
        print(
            f"recorded {entry.label}: {entry.num_regions} regions "
            f"({entry.fingerprint})"
        )
    print(
        f"corpus {corpus.name!r}: {len(corpus.entries())} entries "
        f"in {corpus.store.root}"
    )
    return 0


def cmd_trace_corpus_list(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """``repro trace corpus list``: print the corpus index."""
    corpus = _open_corpus(args.name)
    entries = corpus.entries()
    rows = [
        [e.label, str(e.num_regions), f"{e.scale:g}",
         e.fingerprint.rsplit(":", 1)[-1][:16], e.store_key[:16]]
        for e in entries
    ]
    print(format_table(
        ["entry", "regions", "scale", "sha256[:16]", "store key[:16]"],
        rows, title=f"Corpus {corpus.name!r} ({len(entries)} entries)",
    ))
    return 0


def cmd_trace_corpus_replay(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """``repro trace corpus replay``: sharded replay of one entry."""
    import shutil
    import tempfile

    from repro.profiling.profiler import profiles_digest
    from repro.trace.corpus import conformance_machine
    from repro.trace.shard import ShardedReplay, split_trace

    corpus = _open_corpus(args.name)
    entry = _find_corpus_entry(corpus, args.entry)
    path = corpus.resolve(entry)
    machine = conformance_machine(entry.num_threads, args.backend)
    shards = min(max(args.shards, 1), entry.num_regions)
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-corpus-replay-"))
    try:
        shard_paths = split_trace(path, workdir, num_shards=shards)
        replay = ShardedReplay(shard_paths, machine, workers=args.workers)
        profiles, full = replay.run(
            want_profiles=True, want_full=args.full
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    print(
        f"replayed {entry.label} from the corpus: {len(profiles)} regions "
        f"across {shards} shard(s), {args.workers} worker(s) "
        f"on {machine.name}"
    )
    print(f"profile digest: {profiles_digest(profiles)}")
    if full is not None:
        app = full.app
        print(
            f"full run: {app.cycles:.0f} cycles, "
            f"IPC {app.instructions / app.cycles:.3f}"
        )
    if replay.report.noteworthy():
        print(replay.report.render())
    return 0


def cmd_trace_corpus_verify(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """``repro trace corpus verify``: the conformance sweep (exit 1 on
    any digest mismatch)."""
    import time

    corpus = _open_corpus(args.name)
    started = time.perf_counter()
    results = corpus.verify(num_shards=args.shards, workers=args.workers)
    elapsed = time.perf_counter() - started
    if not results:
        print(
            f"corpus {corpus.name!r} is empty — record entries first "
            f"(`repro trace corpus record`)"
        )
        return 0
    def _pair(u: str, s: str) -> str:
        return u if u == s else f"{u}!={s}"

    rows = [
        [r["label"], r["backend"],
         _pair(r["unsharded"], r["sharded"]),
         _pair(r["unsharded_full"], r["sharded_full"]),
         "ok" if r["ok"] else "MISMATCH"]
        for r in results
    ]
    print(format_table(
        ["entry", "backend", "profiles", "full run", "verdict"], rows,
        title=f"Conformance sweep ({len(results)} checks, "
              f"{args.workers} worker(s), {elapsed:.1f}s)",
    ))
    bad = [r for r in results if not r["ok"]]
    if bad:
        print(
            f"VERIFY FAILED: {len(bad)} of {len(results)} checks "
            f"mismatched", file=sys.stderr,
        )
        return 1
    print(f"verify OK: {len(results)} checks bit-identical")
    return 0


CORPUS_COMMANDS = {
    "record": cmd_trace_corpus_record,
    "list": cmd_trace_corpus_list,
    "replay": cmd_trace_corpus_replay,
    "verify": cmd_trace_corpus_verify,
}


def cmd_trace_corpus(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """``repro trace corpus``: dispatch to the corpus subcommands."""
    return CORPUS_COMMANDS[args.corpus_command](args, parser)


TRACE_COMMANDS = {
    "record": cmd_trace_record,
    "replay": cmd_trace_replay,
    "inspect": cmd_trace_inspect,
    "fuzz": cmd_trace_fuzz,
    "corpus": cmd_trace_corpus,
}


def cmd_trace(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """``repro trace``: dispatch to the trace subcommands."""
    return TRACE_COMMANDS[args.trace_command](args, parser)


def cmd_bench(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """``repro bench``: run the benchmark harness through pytest."""
    bench_dir = pathlib.Path("benchmarks")
    if not (bench_dir / "conftest.py").is_file():
        parser.error(
            "benchmarks/ not found — run from a repository checkout"
        )
    env = {
        "REPRO_BENCH_SCALE": args.scale,
        "REPRO_BENCH_WORKLOADS": args.workloads,
        "REPRO_BENCH_MIN_SPEEDUP": args.min_speedup,
        "REPRO_BENCH_REPEAT": args.repeat,
    }
    for name, value in env.items():
        if value is not None:
            os.environ[name] = str(value)
    if args.jit:
        os.environ["REPRO_JIT"] = "on"
    from repro.util import jit as jit_mod

    status = jit_mod.jit_status()
    print(f"JIT tier: {status['tier']} (mode {status['mode']})")
    note = jit_mod.degradation_note()
    if note is not None:
        print(f"warning: {note}")
    known = bench_targets(bench_dir)
    unknown = [t for t in args.targets if t not in known]
    if unknown:
        parser.error(f"unknown bench targets {unknown}; known: {list(known)}")
    if args.targets:
        paths = [
            str(bench_dir / f"test_{target}.py") for target in args.targets
        ]
    else:
        paths = [str(bench_dir)]
    import pytest

    return pytest.main([*paths, "-x", "-q"])


def cmd_clean(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """``repro clean``: delete or garbage-collect the artifact store."""
    store = ArtifactStore()
    if args.gc:
        stats = janitor.collect_garbage(
            store,
            ttl_seconds=(
                janitor.parse_duration(args.ttl) if args.ttl else None
            ),
            max_bytes=(
                janitor.parse_size(args.max_bytes) if args.max_bytes else None
            ),
            reap_tmp=not args.no_reap_tmp,
            tmp_grace_seconds=(
                janitor.parse_duration(args.tmp_grace)
                if args.tmp_grace
                else janitor.DEFAULT_TMP_GRACE_SECONDS
            ),
            dry_run=args.dry_run,
        )
        print(stats.render(store.root))
        return 0
    if args.ttl or args.max_bytes or args.tmp_grace or args.no_reap_tmp:
        parser.error("--ttl/--max-bytes/--tmp-grace/--no-reap-tmp need --gc")
    if args.dry_run:
        print(f"{store.root}: {store.size_bytes()} bytes")
        return 0
    freed = store.clear()
    print(f"removed {store.root} ({freed} bytes)")
    return 0


def cmd_serve(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """``repro serve``: run the experiment service until drained.

    ``SIGTERM``/``SIGINT`` trigger a graceful drain — running jobs
    finish, the queued backlog stays journaled for ``--resume``, and the
    process exits 0.
    """
    from repro.serve import ReproService, configure_serve_logging
    from repro.serve.service import DEFAULT_GC_INTERVAL

    configure_serve_logging(verbose=not args.quiet)
    service = ReproService(
        host=args.host,
        port=args.port,
        workers=args.workers,
        resume=args.resume,
        ttl_seconds=(
            janitor.parse_duration(args.ttl) if args.ttl else None
        ),
        max_bytes=(
            janitor.parse_size(args.max_bytes) if args.max_bytes else None
        ),
        gc_interval=(
            args.gc_interval
            if args.gc_interval is not None
            else DEFAULT_GC_INTERVAL
        ),
        ready_file=args.ready_file,
    )
    service.start()
    service.install_signal_handlers()
    host, port = service.address
    print(f"repro serve: listening on http://{host}:{port} "
          f"({args.workers} worker(s), store {service.store.root})")
    return service.run_forever()


COMMANDS = {
    "run": cmd_run,
    "figures": cmd_figures,
    "sweep": cmd_sweep,
    "machines": cmd_machines,
    "trace": cmd_trace,
    "bench": cmd_bench,
    "clean": cmd_clean,
    "serve": cmd_serve,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (the ``repro`` console script).

    Library errors (bad traces, unknown workloads, machine mismatches)
    are reported on stderr with exit code 1 instead of a traceback.

    Args:
        argv: Argument list (default ``sys.argv[1:]``).

    Returns:
        Process exit code.
    """
    if argv is None:
        argv = sys.argv[1:]
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return COMMANDS[args.command](args, parser)
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        # Conventional 128 + SIGINT exit, no traceback.  Worker pools
        # are already torn down: the runner's fan-out shuts its pool
        # down (cancelling queued work) on any exception.
        print("repro: interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Downstream closed the pipe (`repro ... | head`); exit quietly
        # instead of tracebacking.  Redirect stdout to devnull so the
        # interpreter's shutdown flush cannot raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
