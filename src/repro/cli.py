"""The unified ``repro`` command-line interface.

One console entry point drives the whole reproduction (see ``docs/cli.md``
for the user guide):

* ``repro run`` — regenerate the evaluation battery (all figures/tables),
  parallel and incremental via the artifact store;
* ``repro figures`` — same battery, but write each figure to a file;
* ``repro sweep`` — the cross-architecture transfer sweep (machines ×
  workloads matrix over the machine registry);
* ``repro machines`` — list the machine registry;
* ``repro bench`` — run the pytest benchmark harness (perf + figures)
  with the environment knobs set from flags;
* ``repro clean`` — delete the artifact store.

Installed as ``repro`` by ``pip install -e .``; equivalently available
without installation as ``PYTHONPATH=src python -m repro ...``.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys

from repro.errors import ConfigError
from repro.experiments import battery
from repro.machines import machine_summary
from repro.store import ArtifactStore
from repro.util.tables import format_table


def _runner_or_error(
    args: argparse.Namespace, parser: argparse.ArgumentParser
):
    """Build the runner, turning config errors into clean CLI errors."""
    try:
        return battery.runner_from_args(args)
    except ConfigError as exc:
        parser.error(str(exc))


def bench_targets(bench_dir: pathlib.Path) -> tuple[str, ...]:
    """``repro bench`` target shorthands, derived from the benchmark files.

    Args:
        bench_dir: The ``benchmarks/`` directory of a checkout.

    Returns:
        One shorthand per ``test_<name>.py`` file (``perf``, ``fig1``, ...).
    """
    return tuple(
        sorted(p.stem.removeprefix("test_") for p in bench_dir.glob("test_*.py"))
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level ``repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BarrierPoint reproduction: experiments, figures, "
                    "benchmarks, and the artifact store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run", help="regenerate the evaluation battery (stdout)"
    )
    battery.add_runner_options(run_p)

    figures_p = sub.add_parser(
        "figures", help="regenerate figures/tables into files"
    )
    battery.add_runner_options(figures_p)
    figures_p.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("benchmarks/results"),
        help="output directory (default benchmarks/results)",
    )

    sweep_p = sub.add_parser(
        "sweep", help="cross-architecture transfer sweep (machines x workloads)"
    )
    battery.add_runner_options(sweep_p)
    sweep_p.add_argument(
        "--workloads", type=str, default="",
        help="comma-separated workload subset (default: the full suite)",
    )
    sweep_p.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="also write the sweep figure to this file",
    )

    machines_p = sub.add_parser(
        "machines", help="list the machine registry"
    )
    machines_p.add_argument(
        "--fingerprints", action="store_true",
        help="include each machine's artifact-store fingerprint",
    )

    bench_p = sub.add_parser(
        "bench", help="run the pytest benchmark harness"
    )
    bench_p.add_argument(
        "targets", nargs="*", metavar="TARGET",
        help="benchmark subset — one name per benchmarks/test_<name>.py "
             "file, e.g. perf, fig1, table3 (default: everything)",
    )
    bench_p.add_argument(
        "--scale", type=float, default=None,
        help="sets REPRO_BENCH_SCALE (default 0.5)",
    )
    bench_p.add_argument(
        "--workloads", type=str, default=None,
        help="sets REPRO_BENCH_WORKLOADS (comma-separated subset)",
    )
    bench_p.add_argument(
        "--min-speedup", type=float, default=None,
        help="sets REPRO_BENCH_MIN_SPEEDUP (perf benchmark floor)",
    )
    bench_p.add_argument(
        "--repeat", type=int, default=None,
        help="sets REPRO_BENCH_REPEAT (best-of-N timing)",
    )

    clean_p = sub.add_parser(
        "clean", help="delete the artifact store"
    )
    clean_p.add_argument(
        "--dry-run", action="store_true",
        help="report what would be freed without deleting",
    )
    return parser


def cmd_run(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """``repro run``: print configs and every regenerated figure."""
    runner = _runner_or_error(args, parser)
    selected = battery.select_experiments(parser, args.only)
    print(battery.show_configs())
    print()

    def _report(name: str, output: str, seconds: float, cached: bool) -> None:
        source = "store" if cached else "computed"
        print(output)
        print(f"[{name} regenerated in {seconds:.1f}s ({source})]")
        print()

    battery.run_experiments(runner, selected, on_result=_report)
    return 0


def cmd_figures(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """``repro figures``: write each regenerated figure to ``--out``."""
    runner = _runner_or_error(args, parser)
    selected = battery.select_experiments(parser, args.only)
    args.out.mkdir(parents=True, exist_ok=True)

    def _report(name: str, output: str, seconds: float, cached: bool) -> None:
        path = args.out / f"{name}.txt"
        path.write_text(output + "\n")
        source = "store" if cached else "computed"
        print(f"{path}  [{seconds:.1f}s, {source}]")

    battery.run_experiments(runner, selected, on_result=_report)
    return 0


def cmd_sweep(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """``repro sweep``: the machines × workloads transfer-error matrix."""
    runner = _runner_or_error(args, parser)
    if args.workloads:
        from repro.workloads import WORKLOAD_NAMES, registered_workloads

        selected = tuple(
            name.strip() for name in args.workloads.split(",") if name.strip()
        )
        known = registered_workloads()
        unknown = [w for w in selected if w not in known]
        if unknown:
            extensions = sorted(set(known) - set(WORKLOAD_NAMES))
            parser.error(
                f"unknown workloads {unknown}; paper suite: "
                f"{sorted(WORKLOAD_NAMES)}; extension workloads: {extensions}"
            )
        runner.benchmarks = selected

    def _report(name: str, output: str, seconds: float, cached: bool) -> None:
        source = "store" if cached else "computed"
        print(output)
        print(f"[{name} regenerated in {seconds:.1f}s ({source})]")
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(output + "\n")
            print(f"written to {args.out}")

    battery.run_experiments(runner, ["sweep"], on_result=_report)
    return 0


def cmd_machines(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """``repro machines``: print the machine registry."""
    rows = machine_summary()
    headers = ["machine", "cores", "sockets", "L3", "DRAM", "hierarchy"]
    cells = [
        [r["name"], r["cores"], r["sockets"], r["l3"], r["dram"],
         r["hierarchy"]]
        for r in rows
    ]
    if args.fingerprints:
        headers.append("fingerprint")
        for row, r in zip(cells, rows):
            row.append(r["fingerprint"])
    headers.append("description")
    for row, r in zip(cells, rows):
        row.append(r["description"])
    print(format_table(headers, cells, title="Machine registry"))
    return 0


def cmd_bench(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """``repro bench``: run the benchmark harness through pytest."""
    bench_dir = pathlib.Path("benchmarks")
    if not (bench_dir / "conftest.py").is_file():
        parser.error(
            "benchmarks/ not found — run from a repository checkout"
        )
    env = {
        "REPRO_BENCH_SCALE": args.scale,
        "REPRO_BENCH_WORKLOADS": args.workloads,
        "REPRO_BENCH_MIN_SPEEDUP": args.min_speedup,
        "REPRO_BENCH_REPEAT": args.repeat,
    }
    for name, value in env.items():
        if value is not None:
            os.environ[name] = str(value)
    known = bench_targets(bench_dir)
    unknown = [t for t in args.targets if t not in known]
    if unknown:
        parser.error(f"unknown bench targets {unknown}; known: {list(known)}")
    if args.targets:
        paths = [
            str(bench_dir / f"test_{target}.py") for target in args.targets
        ]
    else:
        paths = [str(bench_dir)]
    import pytest

    return pytest.main([*paths, "-x", "-q"])


def cmd_clean(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """``repro clean``: delete (or size up) the artifact store."""
    store = ArtifactStore()
    if args.dry_run:
        print(f"{store.root}: {store.size_bytes()} bytes")
        return 0
    freed = store.clear()
    print(f"removed {store.root} ({freed} bytes)")
    return 0


COMMANDS = {
    "run": cmd_run,
    "figures": cmd_figures,
    "sweep": cmd_sweep,
    "machines": cmd_machines,
    "bench": cmd_bench,
    "clean": cmd_clean,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (the ``repro`` console script).

    Args:
        argv: Argument list (default ``sys.argv[1:]``).

    Returns:
        Process exit code.
    """
    if argv is None:
        argv = sys.argv[1:]
    parser = build_parser()
    args = parser.parse_args(argv)
    return COMMANDS[args.command](args, parser)


if __name__ == "__main__":
    sys.exit(main())
