"""Job-queue supervisor of the experiment service: coalescing + journal.

The supervisor owns everything between the HTTP API and the execution
engine:

* a bounded pool of worker *threads*, each executing one computation at
  a time through a serial :class:`~repro.experiments.common.FaultTolerantFanout`
  — so a served job inherits the batch runner's retry/backoff and
  fault-injection semantics wholesale (``runner.task`` faults are
  retried; exhaustion fails the job with a structured error, never a
  hang);
* **request coalescing**: submissions are fingerprinted
  (:meth:`~repro.serve.jobs.JobSpec.fingerprint`) and an identical
  submission while the first is queued or running attaches to the same
  computation — N identical submissions resolve to one computation and
  N completions.  Submissions whose artifacts are already in the store
  complete instantly without computing anything (warm hits);
* a crash-tolerant JSONL **journal** (the PR 5 pattern: append + flush +
  fsync, torn final line tolerated) under ``<store>/serve/journal.jsonl``
  recording every submission and terminal state, so ``--resume``
  restores the queued/running backlog of a killed server and recomputes
  exactly that.

Worker threads, not processes: the expensive passes release the GIL in
their numpy kernels, results flow through the artifact store either
way, and per-task ``SIGALRM`` timeouts are unavailable off the main
thread — so the supervisor forces ``retry.timeout`` to ``None`` and
relies on retry budgets for liveness.
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
import threading
import time
from dataclasses import dataclass, field, replace

from repro.errors import ConfigError, ReproError
from repro.experiments import battery
from repro.experiments.common import (
    FanoutTask,
    FaultTolerantFanout,
    RetryPolicy,
    _time_limit,
    compute_pair,
)
from repro.faults import maybe_inject
from repro.serve.jobs import JobRecord, JobSpec
from repro.store import ArtifactStore, put_count
from repro.util import jit

#: Journal location under the artifact-store root.
JOURNAL_DIR = "serve"
JOURNAL_NAME = "journal.jsonl"


class ServiceDrainingError(ReproError):
    """A submission arrived while the service is draining for shutdown."""


def execute_job(task: tuple) -> list:
    """Worker function: execute one job spec to completion.

    Module-level and in the :class:`FaultTolerantFanout` convention
    (``(*args, attempt, timeout)``), so the supervisor's fan-out drives
    it with the same retry machinery as the batch runner.  ``profile``
    and ``full`` jobs go through :func:`compute_pair` — literally the
    batch runner's pool worker, with its ``runner.task`` fault site and
    store writes — so a served pass is byte-identical to a CLI pass by
    construction.  ``figure``/``sweep`` jobs drive
    :func:`battery.run_experiments` with a serial runner.

    Args:
        task: ``(spec_dict, store_root[, attempt, timeout])``.

    Returns:
        The job's ``[(artifact_kind, store_key), ...]`` list.
    """
    spec_dict, store_root, *rest = task
    attempt = rest[0] if rest else 0
    timeout = rest[1] if len(rest) > 1 else None
    spec = JobSpec.from_dict(spec_dict)
    if spec.kind in ("profile", "full"):
        want_profiles = spec.kind == "profile"
        compute_pair((
            spec.workload, spec.threads, spec.scale, store_root,
            want_profiles, not want_profiles, spec.machine,
            attempt, timeout,
        ))
        return [list(pair) for pair in spec.artifacts()]
    with _time_limit(timeout, spec.label()):
        maybe_inject("runner.task", key=spec.label(), attempt=attempt)
        store = (
            ArtifactStore(root=store_root)
            if store_root is not None
            else ArtifactStore(enabled=False)
        )
        battery.run_experiments(
            spec.runner(store), [spec.effective_figure()]
        )
    return [list(pair) for pair in spec.artifacts()]


class ServeJournal:
    """Append-only JSONL journal of the service's job lifecycle.

    Same durability contract as the runner's checkpoint journal: every
    event is flushed and fsynced as it is appended, and replay skips a
    torn final line (the crash may have landed mid-append) and any
    unparsable line — the journal under-promises rather than lies.

    While the service is busy the journal's mtime stays fresh, so the
    janitor's TTL/LRU sweeps (which treat every store file uniformly)
    leave an active journal alone.

    Args:
        path: The journal file (created on first append).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = pathlib.Path(path)
        self._lock = threading.Lock()

    @classmethod
    def for_store(cls, store: ArtifactStore | None) -> ServeJournal | None:
        """The journal of a store-backed service (``None`` = nowhere durable).

        Args:
            store: The service's artifact store.

        Returns:
            The journal, or ``None`` when the store is absent/disabled.
        """
        if store is None or not store.enabled:
            return None
        return cls(store.root / JOURNAL_DIR / JOURNAL_NAME)

    def record(self, entry: dict) -> None:
        """Append one event durably (flush + fsync).

        Args:
            entry: JSON-ready event dict (must carry an ``"event"`` key).
        """
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())

    def replay(self) -> list[dict]:
        """Load every intact event, in append order.

        Returns:
            The event dicts (empty when no journal exists yet).
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return []
        events: list[dict] = []
        for line in text.splitlines():
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and "event" in entry:
                events.append(entry)
        return events

    def clear(self) -> None:
        """Delete the journal file."""
        try:
            self.path.unlink()
        except OSError:
            pass


@dataclass
class _Computation:
    """One deduplicated unit of work and the jobs riding on it."""

    fingerprint: str
    spec: JobSpec
    job_ids: list[str] = field(default_factory=list)
    state: str = "queued"


@dataclass
class ServeCounters:
    """Monotonic service counters surfaced by ``GET /stats``.

    Attributes:
        submitted: Jobs accepted (HTTP submissions + journal restores).
        coalesced: Submissions attached to an in-flight identical
            computation (the coalescing proof: ``submitted`` identical
            requests, ``computations`` = 1, ``coalesced`` = N - 1).
        cache_hits: Submissions served instantly from warm store
            artifacts.
        computations: Computations started (deduplicated work units).
        completed: Computations that finished successfully.
        failed: Computations that exhausted their retry budget.
        resumed: Jobs restored from the journal by ``--resume``.
    """

    submitted: int = 0
    coalesced: int = 0
    cache_hits: int = 0
    computations: int = 0
    completed: int = 0
    failed: int = 0
    resumed: int = 0

    def to_dict(self) -> dict:
        """JSON-ready counter snapshot."""
        return {
            "submitted": self.submitted,
            "coalesced": self.coalesced,
            "cache_hits": self.cache_hits,
            "computations": self.computations,
            "completed": self.completed,
            "failed": self.failed,
            "resumed": self.resumed,
        }


class JobSupervisor:
    """Bounded-worker job queue with request coalescing and a journal.

    Args:
        store: Artifact store backing results, warm hits, and the
            journal (default: the environment-configured store).
        workers: Worker-thread count (>= 1).
        retry: Retry/backoff budget per computation.  The per-task
            ``SIGALRM`` timeout is forced off — signals are unavailable
            in worker threads (see the module docstring).
        resume: Restore the journaled backlog on :meth:`start`.
    """

    def __init__(
        self,
        store: ArtifactStore | None = None,
        workers: int = 1,
        retry: RetryPolicy | None = None,
        resume: bool = False,
    ) -> None:
        self.store = store if store is not None else ArtifactStore()
        self.workers = max(1, int(workers))
        retry = retry if retry is not None else RetryPolicy.from_env()
        self.retry = replace(retry, timeout=None)
        self.resume = resume
        self.journal = ServeJournal.for_store(self.store)
        self.counters = ServeCounters()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: list[_Computation] = []
        self._inflight: dict[str, _Computation] = {}
        self._jobs: dict[str, JobRecord] = {}
        self._order: list[str] = []
        self._threads: list[threading.Thread] = []
        self._stop = False
        self._draining = False
        self._running = 0
        self._ids = itertools.count(1)
        self._put_base = put_count()
        self._started_at = time.time()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Restore the journal (under ``resume``) and spawn the workers."""
        if self.resume:
            self._restore()
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def drain(self, timeout: float | None = None) -> int:
        """Graceful shutdown: finish running jobs, leave the rest journaled.

        Workers stop taking new computations and finish the one they are
        on; queued computations stay in the journal (their jobs remain
        ``queued``) for a later ``--resume`` to complete.

        Args:
            timeout: Per-thread join budget in seconds.

        Returns:
            Number of computations left queued (journaled, not run).
        """
        with self._wakeup:
            self._draining = True
            self._stop = True
            self._wakeup.notify_all()
        for thread in self._threads:
            thread.join(timeout)
        with self._lock:
            return len(self._queue)

    @property
    def draining(self) -> bool:
        """Whether the service has begun its shutdown drain."""
        return self._draining

    def begin_drain(self) -> None:
        """Reject new submissions from now on (drain phase one)."""
        with self._lock:
            self._draining = True

    # ------------------------------------------------------------------
    # Submission and queries
    # ------------------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Accept one job: coalesce, serve warm, or enqueue.

        Args:
            spec: The validated submission.

        Returns:
            The job's record (state ``queued``/``running`` when attached
            to a computation, ``done`` on a warm store hit).

        Raises:
            ServiceDrainingError: When the service is draining.
            ConfigError: When the spec's artifacts cannot be keyed
                (e.g. an unreadable ``trace:<path>`` workload).
        """
        fingerprint = spec.fingerprint()
        try:
            artifacts = spec.artifacts()
        except OSError as exc:
            raise ConfigError(
                f"cannot key job {spec.label()!r}: {exc}"
            ) from exc
        with self._wakeup:
            if self._draining:
                raise ServiceDrainingError(
                    "service is draining; not accepting new jobs"
                )
            record = JobRecord(
                id=f"job-{next(self._ids)}",
                spec=spec,
                fingerprint=fingerprint,
            )
            self.counters.submitted += 1
            computation = self._inflight.get(fingerprint)
            if computation is not None:
                record.coalesced = True
                record.state = computation.state
                computation.job_ids.append(record.id)
                self.counters.coalesced += 1
                self._admit(record)
            elif all(self.store.has(kind, key) for kind, key in artifacts):
                record.state = "done"
                record.cached = True
                record.artifacts = artifacts
                self.counters.cache_hits += 1
                self._admit(record)
                self._journal_event({
                    "event": "done",
                    "id": record.id,
                    "artifacts": [list(pair) for pair in artifacts],
                    "cached": True,
                })
            else:
                computation = _Computation(
                    fingerprint=fingerprint, spec=spec,
                    job_ids=[record.id],
                )
                self._inflight[fingerprint] = computation
                self._queue.append(computation)
                self.counters.computations += 1
                self._admit(record)
                self._wakeup.notify()
            return record

    def _admit(self, record: JobRecord) -> None:
        """Register a job record and journal its submission (lock held)."""
        self._jobs[record.id] = record
        self._order.append(record.id)
        self._journal_event({
            "event": "submit",
            "id": record.id,
            "fingerprint": record.fingerprint,
            "spec": record.spec.to_dict(),
            "coalesced": record.coalesced,
        })

    def job(self, job_id: str) -> JobRecord | None:
        """Look up one job record by id."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[JobRecord]:
        """Every job record, in submission order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def stats(self) -> dict:
        """The service's statistics snapshot (``GET /stats``)."""
        with self._lock:
            queued = len(self._queue)
            running = self._running
            counters = self.counters.to_dict()
        return {
            "uptime_s": round(time.time() - self._started_at, 3),
            "workers": self.workers,
            "draining": self._draining,
            "jit": jit.jit_status(),
            "jobs": dict(counters, queued=queued, running=running),
            "store": {
                "root": str(self.store.root),
                "enabled": self.store.enabled,
                "hits": self.store.hits,
                "misses": self.store.misses,
                "puts": put_count() - self._put_base,
            },
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        """One worker thread: take computations until told to stop."""
        while True:
            with self._wakeup:
                while not self._queue and not self._stop:
                    self._wakeup.wait()
                if self._stop:
                    return
                computation = self._queue.pop(0)
                computation.state = "running"
                self._running += 1
                for job_id in computation.job_ids:
                    self._jobs[job_id].state = "running"
            try:
                self._run_computation(computation)
            finally:
                with self._lock:
                    self._running -= 1

    def _run_computation(self, computation: _Computation) -> None:
        """Execute one computation through the fault-tolerant fan-out."""
        store_root = (
            str(self.store.root) if self.store.enabled else None
        )
        task = FanoutTask(
            key=computation.fingerprint,
            label=computation.spec.label(),
            args=(computation.spec.to_dict(), store_root),
        )
        fanout = FaultTolerantFanout(
            fn=execute_job, workers=0, retry=self.retry
        )
        error: str | None = None
        artifacts: tuple[tuple[str, str], ...] = ()
        try:
            results = fanout.run([task])
            artifacts = tuple(
                (kind, key) for kind, key in results[task.key]
            )
        except ReproError as exc:
            error = str(exc)
        except Exception as exc:  # pragma: no cover - defensive
            error = f"{type(exc).__name__}: {exc}"
        report = fanout.report.tasks[0]
        with self._lock:
            self._inflight.pop(computation.fingerprint, None)
            computation.state = "failed" if error else "done"
            if error:
                self.counters.failed += 1
            else:
                self.counters.completed += 1
            for job_id in computation.job_ids:
                record = self._jobs[job_id]
                record.attempts = report.attempts
                record.errors = tuple(report.errors)
                if error:
                    record.state = "failed"
                    record.error = error
                    self._journal_event({
                        "event": "failed", "id": job_id, "error": error,
                    })
                else:
                    record.state = "done"
                    record.artifacts = artifacts
                    self._journal_event({
                        "event": "done",
                        "id": job_id,
                        "artifacts": [list(pair) for pair in artifacts],
                    })

    # ------------------------------------------------------------------
    # Journal restore
    # ------------------------------------------------------------------

    def _journal_event(self, entry: dict) -> None:
        """Record one journal event (no-op without a durable journal)."""
        if self.journal is not None:
            self.journal.record(entry)

    def _restore(self) -> None:
        """Rebuild job records from the journal; re-enqueue the backlog.

        Jobs with a terminal event are restored as-is (their artifacts
        stay fetchable); jobs that were queued or running when the
        server died are re-submitted to the queue, coalescing again by
        fingerprint.  Restored events are not re-journaled — the journal
        already has them; only genuinely new events append.
        """
        if self.journal is None:
            return
        events = self.journal.replay()
        records: dict[str, JobRecord] = {}
        order: list[str] = []
        for entry in events:
            event, job_id = entry.get("event"), entry.get("id")
            if not isinstance(job_id, str):
                continue
            if event == "submit":
                try:
                    spec = JobSpec.from_dict(entry.get("spec"))
                except ReproError:
                    continue
                records[job_id] = JobRecord(
                    id=job_id,
                    spec=spec,
                    fingerprint=entry.get("fingerprint", spec.fingerprint()),
                    coalesced=bool(entry.get("coalesced")),
                    resumed=True,
                )
                order.append(job_id)
            elif event == "done" and job_id in records:
                record = records[job_id]
                record.state = "done"
                record.cached = bool(entry.get("cached"))
                record.artifacts = tuple(
                    (kind, key)
                    for kind, key in entry.get("artifacts", [])
                )
            elif event == "failed" and job_id in records:
                records[job_id].state = "failed"
                records[job_id].error = entry.get("error")
        highest = 0
        with self._lock:
            for job_id in order:
                record = records[job_id]
                number = job_id.rsplit("-", 1)[-1]
                if number.isdigit():
                    highest = max(highest, int(number))
                self._jobs[job_id] = record
                self._order.append(job_id)
                self.counters.submitted += 1
                self.counters.resumed += 1
                if record.state != "queued":
                    continue
                computation = self._inflight.get(record.fingerprint)
                if computation is not None:
                    record.coalesced = True
                    computation.job_ids.append(job_id)
                    self.counters.coalesced += 1
                    continue
                # Artifacts may have landed after the last journal entry
                # (the done event was lost with the process): trust only
                # what is actually in the store.
                try:
                    artifacts = record.spec.artifacts()
                except OSError:
                    record.state = "failed"
                    record.error = "resume: job inputs no longer readable"
                    continue
                if all(
                    self.store.has(kind, key) for kind, key in artifacts
                ):
                    record.state = "done"
                    record.cached = True
                    record.artifacts = artifacts
                    self.counters.cache_hits += 1
                    self._journal_event({
                        "event": "done",
                        "id": job_id,
                        "artifacts": [list(pair) for pair in artifacts],
                        "cached": True,
                    })
                    continue
                computation = _Computation(
                    fingerprint=record.fingerprint,
                    spec=record.spec,
                    job_ids=[job_id],
                )
                self._inflight[record.fingerprint] = computation
                self._queue.append(computation)
                self.counters.computations += 1
            self._ids = itertools.count(highest + 1)
