"""Job schema of the experiment service: validation, identity, artifacts.

A :class:`JobSpec` is the unit of work a client submits to ``repro
serve`` as a JSON object.  The schema is deliberately small — four job
kinds covering everything the CLI can compute:

* ``profile`` — the functional profiling pass of one (workload, threads,
  machine) triple;
* ``full`` — the detailed full-run pass of the same triple;
* ``figure`` — one rendered battery figure/table (``fig1`` ... ``table3``,
  ``ablations``);
* ``sweep`` — the cross-architecture transfer matrix (machines ×
  workloads).

Validation is loud and happens at submission time: unknown fields,
unknown workloads/machines/figures, malformed dynamic workload names
(``fuzz-007`` instead of ``fuzz-7``), and kind/field mismatches all
raise :class:`~repro.errors.ConfigError` /
:class:`~repro.errors.WorkloadError` with the same message contract the
CLI prints after ``repro: error:`` — the API returns them as structured
400 responses.

Identity: :meth:`JobSpec.fingerprint` digests the canonical spec plus
the package code fingerprint.  Two submissions with equal fingerprints
denote the same computation — the key the supervisor coalesces on — and
:meth:`JobSpec.artifacts` names the store artifacts that computation
produces, which is how a submission can be served warm from the store
without computing anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.experiments import battery
from repro.experiments.common import (
    ExperimentRunner,
    _resolve_machine,
    pair_key,
)
from repro.store import ArtifactStore, code_fingerprint
from repro.workloads import canonical_workload_name

#: The job kinds the submission schema accepts.
JOB_KINDS = ("profile", "full", "figure", "sweep")

#: Every field a job-submission JSON object may carry.
JOB_FIELDS = (
    "kind", "workload", "threads", "machine", "figure",
    "benchmarks", "machines", "scale",
)

#: Artifact kind produced per pass-style job kind.
_PASS_ARTIFACT = {"profile": "profiles", "full": "full"}


def _require_str(value: object, what: str) -> str:
    """Coerce a schema field to ``str``, loudly."""
    if not isinstance(value, str) or not value:
        raise ConfigError(
            f"job field {what!r} must be a non-empty string, "
            f"got {value!r}"
        )
    return value


def _require_int(value: object, what: str) -> int:
    """Coerce a schema field to ``int``, loudly (bools are not ints)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigError(
            f"job field {what!r} must be an integer, got {value!r}"
        )
    return value


def _require_names(value: object, what: str) -> tuple[str, ...]:
    """Coerce a schema field to a tuple of name strings, loudly."""
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise ConfigError(
            f"job field {what!r} must be a list of name strings, "
            f"got {value!r}"
        )
    return tuple(value)


@dataclass(frozen=True)
class JobSpec:
    """One validated job submission.

    Attributes:
        kind: One of :data:`JOB_KINDS`.
        workload: Workload name (``profile``/``full`` kinds) — registry,
            ``fuzz-<seed>``, or ``trace:<path>`` names, all validated
            canonically.
        threads: Thread count of the pass (``profile``/``full``; default
            8).
        machine: Registry machine of the pass (``profile``/``full``;
            ``None`` = the default evaluation machine for ``threads``).
        figure: Experiment name (``figure`` kind), one of the battery's
            figures/tables.
        benchmarks: Workload subset for ``figure``/``sweep`` kinds
            (empty = the paper suite).
        machines: Registry machine set for the ``sweep`` kind (empty =
            the default sweep set).
        scale: Workload scale factor (> 0; 1.0 = paper scale).
    """

    kind: str
    workload: str | None = None
    threads: int | None = None
    machine: str | None = None
    figure: str | None = None
    benchmarks: tuple[str, ...] = ()
    machines: tuple[str, ...] = ()
    scale: float = 1.0

    def __post_init__(self) -> None:
        """Validate the spec loudly at construction."""
        object.__setattr__(self, "benchmarks", tuple(self.benchmarks))
        object.__setattr__(self, "machines", tuple(self.machines))
        if self.kind not in JOB_KINDS:
            raise ConfigError(
                f"unknown job kind {self.kind!r}; known kinds: "
                f"{list(JOB_KINDS)}"
            )
        if not isinstance(self.scale, (int, float)) or isinstance(
            self.scale, bool
        ) or not self.scale > 0:
            raise ConfigError(
                f"job field 'scale' must be a number > 0, got {self.scale!r}"
            )
        object.__setattr__(self, "scale", float(self.scale))
        if self.kind in _PASS_ARTIFACT:
            self._validate_pass()
        else:
            self._validate_figure()

    def _validate_pass(self) -> None:
        """Validate a ``profile``/``full`` spec (workload + machine axis)."""
        self._reject_fields("figure", "benchmarks", "machines")
        if self.workload is None:
            raise ConfigError(
                f"{self.kind!r} jobs need a 'workload' field "
                f"(registry name, fuzz-<seed>, or trace:<path>)"
            )
        canonical_workload_name(_require_str(self.workload, "workload"))
        threads = 8 if self.threads is None else self.threads
        object.__setattr__(
            self, "threads", _require_int(threads, "threads")
        )
        if self.machine is not None:
            _require_str(self.machine, "machine")
        # Resolves the machine eagerly: unknown registry names and
        # thread counts with no evaluation machine fail at submission,
        # not inside a worker.
        resolved = _resolve_machine(self.threads, self.machine)
        if resolved.num_cores < self.threads:
            raise ConfigError(
                f"machine {self.machine!r} has {resolved.num_cores} cores "
                f"but the job asks for {self.threads} threads; pick a "
                f"machine with at least {self.threads} cores "
                f"(see `repro machines`)"
            )

    def _validate_figure(self) -> None:
        """Validate a ``figure``/``sweep`` spec (battery axis)."""
        self._reject_fields("workload", "threads", "machine")
        if self.kind == "figure":
            if self.figure is None:
                raise ConfigError(
                    f"'figure' jobs need a 'figure' field; known figures: "
                    f"{list(battery.EXPERIMENTS)}"
                )
            _require_str(self.figure, "figure")
            if self.figure not in battery.EXPERIMENTS:
                raise ConfigError(
                    f"unknown figure {self.figure!r}; known figures: "
                    f"{list(battery.EXPERIMENTS)}"
                )
            if self.machines and self.figure != "sweep":
                raise ConfigError(
                    "job field 'machines' only applies to sweep jobs "
                    "(kind 'sweep', or figure 'sweep')"
                )
        else:
            self._reject_fields("figure")
        for name in self.benchmarks:
            canonical_workload_name(_require_str(name, "benchmarks[]"))
        if self.machines:
            from repro.machines import machine_names

            unknown = [
                m for m in self.machines if m not in machine_names()
            ]
            if unknown:
                raise ConfigError(
                    f"unknown machines {unknown}; known: "
                    f"{list(machine_names())}"
                )

    def _reject_fields(self, *names: str) -> None:
        """Reject fields that do not apply to this job kind, loudly."""
        offending = [
            name for name in names
            if getattr(self, name) not in (None, ())
        ]
        if offending:
            raise ConfigError(
                f"{self.kind!r} jobs do not take field(s) {offending}"
            )

    # ------------------------------------------------------------------
    # Schema round-trip
    # ------------------------------------------------------------------

    @classmethod
    def from_dict(cls, payload: object) -> JobSpec:
        """Build a spec from a submission JSON object, loudly.

        The inverse of :meth:`to_dict`: every spec round-trips
        bit-identically through its JSON form, including dynamic
        workload names (``fuzz-<seed>``, ``trace:<path>``).

        Args:
            payload: The decoded JSON body of a ``POST /jobs`` request.

        Returns:
            The validated spec.

        Raises:
            ConfigError: On non-objects, unknown fields, bad field
                types, or any validation failure.
        """
        if not isinstance(payload, dict):
            raise ConfigError(
                f"job spec must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        unknown = sorted(set(payload) - set(JOB_FIELDS))
        if unknown:
            raise ConfigError(
                f"unknown job field(s) {unknown}; allowed fields: "
                f"{list(JOB_FIELDS)}"
            )
        kwargs: dict = {"kind": payload.get("kind")}
        if kwargs["kind"] is None:
            raise ConfigError(
                f"job spec needs a 'kind' field; known kinds: "
                f"{list(JOB_KINDS)}"
            )
        _require_str(kwargs["kind"], "kind")
        for name in ("workload", "machine", "figure"):
            if payload.get(name) is not None:
                kwargs[name] = _require_str(payload[name], name)
        if payload.get("threads") is not None:
            kwargs["threads"] = _require_int(payload["threads"], "threads")
        for name in ("benchmarks", "machines"):
            if payload.get(name) is not None:
                kwargs[name] = _require_names(payload[name], name)
        if payload.get("scale") is not None:
            kwargs["scale"] = payload["scale"]
        return cls(**kwargs)

    def to_dict(self) -> dict:
        """The spec's canonical JSON form (round-trips via
        :meth:`from_dict`)."""
        payload: dict = {"kind": self.kind, "scale": self.scale}
        for name in ("workload", "threads", "machine", "figure"):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        for name in ("benchmarks", "machines"):
            value = getattr(self, name)
            if value:
                payload[name] = list(value)
        return payload

    # ------------------------------------------------------------------
    # Identity and artifacts
    # ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Digest of everything that determines this job's results.

        Covers the canonical spec and the package code fingerprint — the
        request-coalescing key: submissions with equal fingerprints are
        one computation.
        """
        return ArtifactStore.derive_key(
            job=self.to_dict(), code=code_fingerprint()
        )

    def label(self) -> str:
        """Human identity for logs, reports, and fault-site keys."""
        if self.kind in _PASS_ARTIFACT:
            suffix = f"@{self.machine}" if self.machine else ""
            return f"{self.kind}:{self.workload}/{self.threads}t{suffix}"
        return f"{self.kind}:{self.effective_figure()}"

    def effective_figure(self) -> str | None:
        """The battery experiment this job renders (``None`` for passes)."""
        if self.kind == "figure":
            return self.figure
        if self.kind == "sweep":
            return "sweep"
        return None

    def runner(self, store: ArtifactStore | None) -> ExperimentRunner:
        """The experiment runner configuration this job executes with.

        Built identically at submission time (``store=None``, for
        artifact-key prediction) and execution time (a real store), so
        predicted and produced store keys always agree.

        Args:
            store: Artifact store for the runner (``None`` = in-memory).

        Returns:
            A serial (``workers=0``) runner for this spec.
        """
        kwargs: dict = {}
        if self.benchmarks:
            kwargs["benchmarks"] = self.benchmarks
        if self.machines:
            kwargs["sweep_machines"] = self.machines
        return ExperimentRunner(
            scale=self.scale, workers=0, store=store, **kwargs
        )

    def artifacts(self) -> tuple[tuple[str, str], ...]:
        """The ``(kind, key)`` store artifacts this job produces.

        Deterministic at submission time: the supervisor uses this to
        serve warm submissions straight from the store and the API's
        job-status response points clients at these for fetching.

        Returns:
            One ``(artifact_kind, store_key)`` pair per artifact.
        """
        if self.kind in _PASS_ARTIFACT:
            key = pair_key(
                self.scale, self.workload, self.threads, self.machine
            )
            return ((_PASS_ARTIFACT[self.kind], key),)
        name = self.effective_figure()
        return (
            ("figure", battery.figure_key(self.runner(store=None), name)),
        )


@dataclass
class JobRecord:
    """One submitted job's lifecycle record (what ``GET /jobs/<id>`` shows).

    Attributes:
        id: Server-assigned job id.
        spec: The validated submission.
        fingerprint: The spec's coalescing fingerprint.
        state: ``"queued"``, ``"running"``, ``"done"``, or ``"failed"``.
        coalesced: Whether this submission attached to an in-flight
            identical computation instead of starting its own.
        cached: Whether the job completed instantly from warm store
            artifacts (no computation at all).
        resumed: Whether the job was restored from the journal by
            ``--resume`` rather than submitted over HTTP this run.
        artifacts: The ``(kind, key)`` artifacts (set when done).
        error: Failure description (set when failed).
    """

    id: str
    spec: JobSpec
    fingerprint: str
    state: str = "queued"
    coalesced: bool = False
    cached: bool = False
    resumed: bool = False
    artifacts: tuple[tuple[str, str], ...] = ()
    error: str | None = None
    attempts: int = 0
    errors: tuple[str, ...] = field(default=(), repr=False)

    def to_dict(self) -> dict:
        """JSON-ready form for the API."""
        return {
            "id": self.id,
            "spec": self.spec.to_dict(),
            "fingerprint": self.fingerprint,
            "state": self.state,
            "coalesced": self.coalesced,
            "cached": self.cached,
            "resumed": self.resumed,
            "artifacts": [list(pair) for pair in self.artifacts],
            "error": self.error,
            "attempts": self.attempts,
            "errors": list(self.errors),
        }
