"""Long-lived experiment service with request coalescing.

``repro serve`` turns the one-shot experiment pipeline into a service: a
stdlib-only HTTP JSON API (:mod:`repro.serve.api`) over a job-queue
supervisor (:mod:`repro.serve.supervisor`) that executes submissions
through the same fault-tolerant fan-out — and therefore the same
artifact store, retry budget, and fault-injection sites — as the batch
CLI, so a served result is byte-identical to a ``repro run`` result.

The service's distinguishing behaviors:

* **request coalescing** — N identical submissions (same canonical job
  spec, same code fingerprint) resolve to one computation and N
  completions; submissions whose artifacts are already cached complete
  instantly;
* a crash-tolerant **job journal** so ``--resume`` restores the backlog
  of a killed server;
* the store **janitor on a cadence** (TTL/quota GC as a background
  service instead of a runner-exit hook);
* **graceful drain** on ``SIGTERM``/``SIGINT``: running jobs finish,
  the queue stays journaled, exit status 0.

See :doc:`docs/serve` for the API reference and lifecycle details.
"""

from repro.serve.jobs import JOB_KINDS, JobRecord, JobSpec
from repro.serve.service import ReproService, configure_serve_logging
from repro.serve.supervisor import (
    JobSupervisor,
    ServeJournal,
    ServiceDrainingError,
    execute_job,
)

__all__ = [
    "JOB_KINDS",
    "JobRecord",
    "JobSpec",
    "JobSupervisor",
    "ReproService",
    "ServeJournal",
    "ServiceDrainingError",
    "configure_serve_logging",
    "execute_job",
]
