"""Process lifecycle of ``repro serve``: HTTP + janitor + graceful drain.

:class:`ReproService` composes the three long-lived pieces of the
experiment service into one process:

* the :class:`~repro.serve.api.ServeHTTPServer` on its own thread,
* the :class:`~repro.serve.supervisor.JobSupervisor` worker pool,
* a background janitor cadence running the store's TTL/quota GC sweep
  (:func:`~repro.store.janitor.collect_garbage`) every ``gc_interval``
  seconds — the PR 5 janitor as a service, instead of a runner-exit
  hook.

Shutdown is a graceful drain: ``SIGTERM``/``SIGINT`` (or a test calling
:meth:`ReproService.request_shutdown`) flips the supervisor into
draining — new submissions get structured 503s — running jobs finish,
the queued backlog stays in the journal for a later ``--resume``, the
HTTP listener stops, and the process exits 0.

An optional *ready file* is written once the server is listening, with
the bound host/port/pid as JSON — how the CI smoke harness finds the
ephemeral port.
"""

from __future__ import annotations

import json
import logging
import os
import pathlib
import signal
import threading

from repro.experiments.common import RetryPolicy
from repro.serve.api import ServeHTTPServer, log
from repro.serve.supervisor import JobSupervisor
from repro.store import ArtifactStore, collect_garbage

#: Default janitor cadence in seconds.
DEFAULT_GC_INTERVAL = 300.0


class ReproService:
    """One experiment-service process: HTTP API + supervisor + janitor.

    Args:
        host: Bind host.
        port: Bind port (0 = ephemeral; see :attr:`address`).
        workers: Supervisor worker-thread count.
        resume: Restore the journaled backlog on start.
        store: Artifact store (default: environment-configured).
        retry: Per-computation retry budget (default: environment).
        ttl_seconds: Janitor TTL (``None`` disables TTL expiry).
        max_bytes: Janitor size quota (``None`` disables the quota).
        gc_interval: Seconds between janitor sweeps (sweeps run only
            when a TTL or quota is configured).
        ready_file: Path to write ``{"host", "port", "pid"}`` JSON to
            once listening (``None`` = don't).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        resume: bool = False,
        store: ArtifactStore | None = None,
        retry: RetryPolicy | None = None,
        ttl_seconds: float | None = None,
        max_bytes: int | None = None,
        gc_interval: float = DEFAULT_GC_INTERVAL,
        ready_file: str | os.PathLike | None = None,
    ) -> None:
        self.store = store if store is not None else ArtifactStore()
        self.supervisor = JobSupervisor(
            store=self.store, workers=workers, retry=retry, resume=resume
        )
        self.httpd = ServeHTTPServer((host, port), self.supervisor)
        self.ttl_seconds = ttl_seconds
        self.max_bytes = max_bytes
        self.gc_interval = max(1.0, float(gc_interval))
        self.ready_file = (
            pathlib.Path(ready_file) if ready_file is not None else None
        )
        self.gc_sweeps = 0
        self._shutdown = threading.Event()
        self._threads: list[threading.Thread] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (the real port when 0 was asked)."""
        return self.httpd.server_address[:2]

    def start(self) -> None:
        """Start the supervisor, HTTP listener, and janitor cadence."""
        self.supervisor.start()
        http_thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        http_thread.start()
        self._threads.append(http_thread)
        if self._gc_enabled():
            gc_thread = threading.Thread(
                target=self._janitor_loop,
                name="repro-serve-janitor",
                daemon=True,
            )
            gc_thread.start()
            self._threads.append(gc_thread)
        self._write_ready_file()
        host, port = self.address
        log.info(json.dumps({
            "event": "listening", "host": host, "port": port,
            "workers": self.supervisor.workers,
            "resumed": self.supervisor.counters.resumed,
        }, sort_keys=True))

    def install_signal_handlers(self) -> None:
        """Route ``SIGTERM``/``SIGINT`` into a graceful drain.

        Main-thread only (signal module restriction); the CLI entry
        point calls this, in-process tests drive
        :meth:`request_shutdown` directly.
        """
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, self._on_signal)

    def _on_signal(self, signum, frame) -> None:
        """Signal handler: begin the drain."""
        log.info(json.dumps({
            "event": "signal", "signal": signal.Signals(signum).name,
        }, sort_keys=True))
        self.request_shutdown()

    def request_shutdown(self) -> None:
        """Begin the graceful drain (idempotent, thread-safe)."""
        self.supervisor.begin_drain()
        self._shutdown.set()

    def run_forever(self) -> int:
        """Serve until a shutdown is requested, then drain.

        Returns:
            0 — a drained shutdown is the service's success path.
        """
        self._shutdown.wait()
        return self.stop()

    def stop(self) -> int:
        """Drain and stop everything; return the (0) exit status."""
        self.supervisor.begin_drain()
        self._shutdown.set()
        left = self.supervisor.drain()
        self.httpd.shutdown()
        self.httpd.server_close()
        if self.ready_file is not None:
            try:
                self.ready_file.unlink()
            except OSError:
                pass
        log.info(json.dumps({
            "event": "drained", "journaled": left,
        }, sort_keys=True))
        return 0

    # ------------------------------------------------------------------
    # Janitor cadence
    # ------------------------------------------------------------------

    def _gc_enabled(self) -> bool:
        """Whether the janitor cadence has anything to enforce."""
        return self.store.enabled and (
            self.ttl_seconds is not None or self.max_bytes is not None
        )

    def _janitor_loop(self) -> None:
        """Run the GC sweep every ``gc_interval`` seconds until shutdown."""
        while not self._shutdown.wait(self.gc_interval):
            self.run_gc_sweep()

    def run_gc_sweep(self) -> None:
        """One janitor sweep (also callable directly, e.g. from tests)."""
        try:
            stats = collect_garbage(
                self.store,
                ttl_seconds=self.ttl_seconds,
                max_bytes=self.max_bytes,
            )
        except OSError as exc:  # pragma: no cover - disk trouble
            log.warning(json.dumps({
                "event": "gc-error", "error": str(exc),
            }, sort_keys=True))
            return
        self.gc_sweeps += 1
        log.info(json.dumps({
            "event": "gc",
            "removed": len(stats.removed),
            "freed_bytes": stats.freed_bytes,
        }, sort_keys=True))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _write_ready_file(self) -> None:
        """Publish the bound address for out-of-process harnesses."""
        if self.ready_file is None:
            return
        host, port = self.address
        self.ready_file.parent.mkdir(parents=True, exist_ok=True)
        self.ready_file.write_text(json.dumps({
            "host": host, "port": port, "pid": os.getpid(),
        }, sort_keys=True) + "\n", encoding="utf-8")


def configure_serve_logging(verbose: bool = True) -> None:
    """Give the ``repro.serve`` logger a stderr handler, once.

    Args:
        verbose: ``False`` silences the request log entirely.
    """
    if not verbose:
        log.addHandler(logging.NullHandler())
        log.propagate = False
        return
    if any(
        not isinstance(h, logging.NullHandler) for h in log.handlers
    ):
        return
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter("%(message)s"))
    log.addHandler(handler)
    log.setLevel(logging.INFO)
    log.propagate = False
