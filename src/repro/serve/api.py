"""HTTP JSON API of the experiment service.

A deliberately small, stdlib-only surface (``http.server`` +
``urllib``-driveable) over the :class:`~repro.serve.supervisor.JobSupervisor`:

=======  ==========================  =========================================
Method   Path                        Meaning
=======  ==========================  =========================================
POST     ``/jobs``                   Submit a job spec (JSON body); returns
                                     the job record — 202 while queued or
                                     running, 200 when served warm.
GET      ``/jobs``                   List every job record.
GET      ``/jobs/<id>``              Poll one job.
GET      ``/artifacts/<kind>/<key>`` Fetch a cached artifact's validated
                                     pickled payload bytes (the exact body
                                     the store holds — byte-identical to a
                                     direct CLI run's artifact).
GET      ``/healthz``                Liveness (``ok`` / ``draining``) plus
                                     the active JIT kernel tier.
GET      ``/stats``                  Supervisor/store counters.
=======  ==========================  =========================================

Error contract: every failure is a structured JSON body
``{"error": "<message>"}`` with the CLI's message text —
:class:`~repro.errors.ConfigError` / :class:`~repro.errors.WorkloadError`
map to 400, a missing job or artifact to 404, a draining service or an
injected/transient I/O failure to 503, anything else to 500.  The
``serve.request`` fault site fires at dispatch, so injected request
faults surface as structured 5xx responses, never hangs or torn bodies.

Request logging is structured: one JSON line per request
(method, path, status, duration) through the ``repro.serve`` logger.
"""

from __future__ import annotations

import json
import logging
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import unquote, urlsplit

from repro.errors import ConfigError, InjectedFaultError, ReproError, WorkloadError
from repro.faults import maybe_inject
from repro.serve.supervisor import JobSupervisor, ServiceDrainingError
from repro.util import jit

#: Structured request-log channel (one JSON object per line).
log = logging.getLogger("repro.serve")

#: Request-body size cap: job specs are small; anything bigger is abuse.
MAX_BODY_BYTES = 1 << 20


def error_status(exc: BaseException) -> int:
    """The HTTP status an exception maps to (the API's error contract).

    Args:
        exc: The failure raised while handling a request.

    Returns:
        400 for invalid submissions, 503 for draining/injected/transient
        failures, 500 for everything else.
    """
    if isinstance(exc, (ConfigError, WorkloadError)):
        return 400
    if isinstance(exc, (ServiceDrainingError, InjectedFaultError, OSError)):
        return 503
    return 500


class ServeHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`JobSupervisor`.

    Args:
        address: ``(host, port)`` bind address (port 0 = ephemeral).
        supervisor: The job supervisor handling submissions.
    """

    daemon_threads = True
    #: Listen backlog: submission bursts (the coalescing case is exactly
    #: many clients at once) must not see kernel connection resets.
    request_queue_size = 128

    def __init__(
        self, address: tuple[str, int], supervisor: JobSupervisor
    ) -> None:
        super().__init__(address, ServeAPIHandler)
        self.supervisor = supervisor


class ServeAPIHandler(BaseHTTPRequestHandler):
    """One HTTP request against the experiment service."""

    #: Advertised in responses; not load-bearing.
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # -- BaseHTTPRequestHandler plumbing --------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence the stock per-line stderr log (we emit JSON lines)."""

    @property
    def supervisor(self) -> JobSupervisor:
        """The server's job supervisor."""
        return self.server.supervisor

    # -- Dispatch -------------------------------------------------------

    def do_GET(self) -> None:
        """Route a GET request."""
        self._dispatch(self._route_get)

    def do_POST(self) -> None:
        """Route a POST request."""
        self._dispatch(self._route_post)

    def _dispatch(self, route) -> None:
        """Run one route under the fault hook and the error contract."""
        started = time.monotonic()
        path = urlsplit(self.path).path
        status = 500
        try:
            maybe_inject("serve.request", key=f"{self.command} {path}")
            status = route(path)
        except ReproError as exc:
            status = error_status(exc)
            self._send_json({"error": str(exc)}, status=status)
        except OSError as exc:
            status = error_status(exc)
            self._send_json({"error": str(exc)}, status=status)
        except Exception as exc:  # pragma: no cover - defensive
            self._send_json(
                {"error": f"{type(exc).__name__}: {exc}"}, status=500
            )
        finally:
            log.info(json.dumps({
                "method": self.command,
                "path": path,
                "status": status,
                "ms": round((time.monotonic() - started) * 1e3, 3),
            }, sort_keys=True))

    # -- Routes ---------------------------------------------------------

    def _route_get(self, path: str) -> int:
        """Handle a GET; return the response status sent."""
        parts = [unquote(p) for p in path.strip("/").split("/") if p]
        if path == "/healthz":
            state = "draining" if self.supervisor.draining else "ok"
            return self._send_json({
                "status": state, "jit_tier": jit.active_tier(),
            })
        if path == "/stats":
            return self._send_json(self.supervisor.stats())
        if path == "/jobs":
            return self._send_json({
                "jobs": [r.to_dict() for r in self.supervisor.jobs()]
            })
        if len(parts) == 2 and parts[0] == "jobs":
            record = self.supervisor.job(parts[1])
            if record is None:
                return self._send_json(
                    {"error": f"no such job {parts[1]!r}"}, status=404
                )
            return self._send_json(record.to_dict())
        if len(parts) == 3 and parts[0] == "artifacts":
            return self._send_artifact(parts[1], parts[2])
        return self._send_json(
            {"error": f"no such resource {path!r}"}, status=404
        )

    def _route_post(self, path: str) -> int:
        """Handle a POST; return the response status sent."""
        if urlsplit(path).path.rstrip("/") != "/jobs":
            return self._send_json(
                {"error": f"no such resource {path!r}"}, status=404
            )
        record = self.supervisor.submit(self._read_spec())
        status = 200 if record.state == "done" else 202
        return self._send_json(record.to_dict(), status=status)

    def _read_spec(self):
        """Parse and validate the submission body, loudly."""
        from repro.serve.jobs import JobSpec

        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ConfigError("job submission needs a JSON body")
        if length > MAX_BODY_BYTES:
            raise ConfigError(
                f"job submission body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte cap"
            )
        body = self.rfile.read(length)
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ConfigError(f"job submission is not valid JSON: {exc}")
        return JobSpec.from_dict(payload)

    # -- Response helpers -----------------------------------------------

    def _send_artifact(self, kind: str, key: str) -> int:
        """Stream one validated artifact body, or a structured 404 miss.

        The body is the store's validated pickled payload — corrupt or
        missing artifacts are a 404 miss (the store's miss semantics),
        never a 500 or a torn body.
        """
        body = self.supervisor.store.payload_bytes(kind, key)
        if body is None:
            return self._send_json(
                {"error": f"no valid artifact {kind}/{key}"}, status=404
            )
        try:
            self.send_response(200)
            self.send_header("Content-Type", "application/octet-stream")
            self.send_header("Content-Length", str(len(body)))
            self.send_header("X-Repro-Artifact", f"{kind}/{key}")
            self.end_headers()
            self.wfile.write(body)
        except OSError:  # pragma: no cover - client went away
            pass
        return 200

    def _send_json(self, payload: dict, status: int = 200) -> int:
        """Send one JSON response; return its status."""
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except OSError:  # pragma: no cover - client went away
            pass
        return status
