#!/usr/bin/env python3
"""Kill-and-resume chaos smoke: SIGKILL a battery run, resume, compare.

The CI chaos job's second leg (the first is the deterministic
fault-matrix battery in ``tests/test_faults.py``):

1. run the ``--quick`` battery serially into a baseline store and keep
   its figure output;
2. start the same battery in a fresh store with a worker pool, wait
   until the checkpoint journal has recorded at least one completed
   pass, then ``SIGKILL`` the whole process group — no cleanup handlers
   run, exactly like an OOM kill or a pulled plug;
3. rerun with ``--resume`` and assert (a) it exits 0, (b) its figure
   output is byte-identical to the baseline, and (c) the run report
   shows at least one pass was resumed from the checkpoint rather than
   recomputed.

Usage::

    python tools/chaos_smoke.py [--workdir DIR] [--timeout SECONDS]

Exits non-zero with a diagnostic on any failed assertion.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: The battery configuration under test: quick scale, one profile-only
#: figure, two workers (so passes land in the journal one at a time).
BATTERY = ["--quick", "--only", "table3", "--workers", "2"]


def _env(store: pathlib.Path) -> dict:
    """Subprocess environment pointed at ``store``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_STORE_DIR"] = str(store)
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_FAULT_SEED", None)
    return env


def _run(args: list[str], store: pathlib.Path) -> subprocess.CompletedProcess:
    """Run one ``repro`` command to completion, capturing output."""
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=_env(store), cwd=REPO_ROOT, text=True, capture_output=True,
    )


def _fail(message: str) -> int:
    """Print a diagnostic and return the failure exit code."""
    print(f"chaos_smoke: FAIL: {message}", file=sys.stderr)
    return 1


def _journal_lines(store: pathlib.Path) -> int:
    """Completed passes currently recorded in the store's journal."""
    journal_dir = store / "journal"
    if not journal_dir.is_dir():
        return 0
    return sum(
        len(path.read_text().splitlines())
        for path in journal_dir.glob("*.jsonl")
    )


def _figures(args: list[str], store: pathlib.Path, out: pathlib.Path):
    """Run ``repro figures`` into ``out`` (returns the process result)."""
    return _run(["figures", *args, "--out", str(out)], store)


def kill_and_resume(workdir: pathlib.Path, timeout: float) -> int:
    """Run the three-step smoke; return a process exit code."""
    baseline_store = workdir / "baseline-store"
    baseline_out = workdir / "baseline-out"
    victim_store = workdir / "victim-store"
    victim_out = workdir / "victim-out"

    print("chaos_smoke: [1/3] baseline battery ...")
    result = _figures(BATTERY, baseline_store, baseline_out)
    if result.returncode != 0:
        return _fail(f"baseline run failed:\n{result.stderr}")
    baseline_text = (baseline_out / "table3.txt").read_text()

    print("chaos_smoke: [2/3] SIGKILL mid-run ...")
    # start_new_session puts the run (and its pool workers) in a fresh
    # process group so one kill() takes down everything, uncleanly.
    victim = subprocess.Popen(
        [sys.executable, "-m", "repro", "figures", *BATTERY,
         "--out", str(victim_out)],
        env=_env(victim_store), cwd=REPO_ROOT, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + timeout
    try:
        while _journal_lines(victim_store) < 1:
            if victim.poll() is not None:
                return _fail(
                    "victim run finished before the kill landed; "
                    "nothing was interrupted"
                )
            if time.monotonic() > deadline:
                return _fail("timed out waiting for a journaled pass")
            time.sleep(0.05)
    finally:
        if victim.poll() is None:
            os.killpg(victim.pid, signal.SIGKILL)
            victim.wait()
    journaled = _journal_lines(victim_store)
    print(f"chaos_smoke: killed after {journaled} journaled pass(es)")

    print("chaos_smoke: [3/3] resume ...")
    result = _figures([*BATTERY, "--resume"], victim_store, victim_out)
    if result.returncode != 0:
        return _fail(f"--resume rerun failed:\n{result.stderr}")
    resumed_text = (victim_out / "table3.txt").read_text()
    if resumed_text != baseline_text:
        return _fail("resumed output differs from the uninterrupted baseline")
    report = result.stdout
    if "run report:" not in report or "0 resumed" in report:
        return _fail(
            "resume recomputed every pass instead of trusting the "
            f"checkpoint journal; stdout was:\n{report}"
        )
    print("chaos_smoke: OK — resumed output is byte-identical to baseline")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workdir", type=pathlib.Path, default=None,
        help="scratch directory (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--timeout", type=float, default=300.0,
        help="seconds to wait for the victim to journal a pass",
    )
    args = parser.parse_args(argv)
    if args.workdir is not None:
        args.workdir.mkdir(parents=True, exist_ok=True)
        return kill_and_resume(args.workdir, args.timeout)
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        return kill_and_resume(pathlib.Path(tmp), args.timeout)


if __name__ == "__main__":
    sys.exit(main())
