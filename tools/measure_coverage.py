#!/usr/bin/env python
"""Measure line coverage of ``src/repro`` over the test suite, stdlib-only.

CI runs the real thing (``pytest --cov=repro --cov-fail-under=N`` in the
``coverage`` job); this tool exists for environments without
``pytest-cov`` — it was used to pin the job's fail-under floor from an
actual measurement.  It approximates coverage.py's line coverage:

* the *denominator* is the set of executable lines per file, collected
  from the compiled code objects (``co_lines``), and
* the *numerator* is the set of lines hit while running the test suite
  under ``sys.settrace`` (restricted to ``src/repro`` frames, so the
  overhead stays tolerable).

Differences from coverage.py (docstring lines, subprocess passes) are
small and mostly make this tool report *lower* coverage, which is the
safe direction for pinning a floor.  Usage::

    PYTHONPATH=src python tools/measure_coverage.py [pytest args...]

Default pytest args: ``tests -q``.
"""

from __future__ import annotations

import os
import pathlib
import sys
import threading

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
PKG_DIR = REPO_ROOT / "src" / "repro"


def executable_lines(path: pathlib.Path) -> set[int]:
    """Executable line numbers of one source file (via code objects)."""
    code = compile(path.read_text(), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    code_type = type(code)
    while stack:
        obj = stack.pop()
        for _start, _end, line in obj.co_lines():
            if line is not None:
                lines.add(line)
        for const in obj.co_consts:
            if isinstance(const, code_type):
                stack.append(const)
    return lines


def main(argv: list[str]) -> int:
    """Run pytest under a repro-scoped line tracer and report coverage."""
    # Anchor at the repo root so `tests.conftest` imports resolve exactly
    # as they do under `python -m pytest` from a checkout.
    os.chdir(REPO_ROOT)
    if str(REPO_ROOT) not in sys.path:
        sys.path.insert(0, str(REPO_ROOT))
    hits: dict[str, set[int]] = {}
    prefix = str(PKG_DIR) + os.sep

    def local_tracer(frame, event, arg):
        if event == "line":
            hits.setdefault(
                frame.f_code.co_filename, set()
            ).add(frame.f_lineno)
        return local_tracer

    def global_tracer(frame, event, arg):
        if event != "call":
            return None
        filename = frame.f_code.co_filename
        if not filename.startswith(prefix):
            return None
        hits.setdefault(filename, set()).add(frame.f_lineno)
        return local_tracer

    # Tracing slows repro frames several-fold; relax hypothesis deadlines
    # so property tests don't flake on speed rather than correctness.
    try:
        from hypothesis import settings

        settings.register_profile("coverage-measure", deadline=None)
        settings.load_profile("coverage-measure")
    except ImportError:  # pragma: no cover - hypothesis is a test dep
        pass

    import pytest

    pytest_args = argv or ["tests", "-q"]
    threading.settrace(global_tracer)
    sys.settrace(global_tracer)
    try:
        exit_code = pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if exit_code != 0:
        print(f"pytest failed (exit {exit_code}); coverage not reported")
        return int(exit_code)

    total_exec = 0
    total_hit = 0
    rows = []
    for path in sorted(PKG_DIR.rglob("*.py")):
        exec_lines = executable_lines(path)
        hit_lines = hits.get(str(path), set()) & exec_lines
        total_exec += len(exec_lines)
        total_hit += len(hit_lines)
        pct = 100.0 * len(hit_lines) / len(exec_lines) if exec_lines else 100.0
        rows.append((pct, path.relative_to(REPO_ROOT), len(hit_lines),
                     len(exec_lines)))
    print()
    print(f"{'file':58s} {'hit':>6s} {'exec':>6s} {'cover':>7s}")
    for pct, rel, hit, executable in rows:
        print(f"{str(rel):58s} {hit:6d} {executable:6d} {pct:6.1f}%")
    overall = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"\nTOTAL: {total_hit}/{total_exec} lines = {overall:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
