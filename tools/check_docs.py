#!/usr/bin/env python3
"""Markdown link checker for the repository's documentation.

Scans every tracked ``*.md`` file (repo root and ``docs/``) for inline
markdown links and validates that relative targets exist on disk.
External URLs are not fetched (CI must stay hermetic); anchors are
stripped before the existence check.

Exit status is non-zero when any link is broken, printing one line per
offender — suitable both for the CI docs job and for
``tests/test_docs.py``.
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Inline links: ``[text](target)``; images share the syntax.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Targets that are not filesystem paths.
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_markdown_files() -> list[pathlib.Path]:
    """Documentation files under the link-check mandate."""
    files = sorted(ROOT.glob("*.md"))
    docs = ROOT / "docs"
    if docs.is_dir():
        files += sorted(docs.rglob("*.md"))
    return files


def broken_links(path: pathlib.Path) -> list[str]:
    """Relative link targets in ``path`` that do not exist.

    Args:
        path: Markdown file to scan.

    Returns:
        Human-readable ``file: target`` strings, one per broken link.
    """
    offenders = []
    text = path.read_text(encoding="utf-8")
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL_PREFIXES):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            offenders.append(f"{path.relative_to(ROOT)}: {target}")
    return offenders


def main() -> int:
    """Check every documentation file; print offenders.

    Returns:
        0 when all relative links resolve, 1 otherwise.
    """
    files = iter_markdown_files()
    offenders: list[str] = []
    for path in files:
        offenders += broken_links(path)
    for line in offenders:
        print(f"broken link — {line}")
    print(f"checked {len(files)} markdown files: "
          f"{'OK' if not offenders else f'{len(offenders)} broken link(s)'}")
    return 1 if offenders else 0


if __name__ == "__main__":
    sys.exit(main())
