#!/usr/bin/env python3
"""Serve smoke: boot the service, prove coalescing, drain on SIGTERM.

The CI serve job (the PR 9 acceptance check):

1. start ``repro serve --port 0`` as a real subprocess against a fresh
   store, discovering the ephemeral port through ``--ready-file``;
2. submit the same scale-0.1 figure job **twice concurrently** and
   assert both complete with identical artifacts while the supervisor
   stats report exactly **one** computation (request coalescing);
3. submit it a third time and assert an instant warm-store completion
   (``cached`` record, store put counter unchanged);
4. fetch the figure artifact by store key and assert a 200 with a
   non-empty body;
5. ``SIGTERM`` the server and assert a graceful drain: exit status 0;
6. restart with ``--resume`` and assert the journal restored all three
   jobs as completed, then drain again (exit 0).

Usage::

    python tools/serve_smoke.py [--workdir DIR] [--scale S]

Exits non-zero with a diagnostic on any failed assertion.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

BOOT_DEADLINE = 120.0
JOB_DEADLINE = 600.0


def _env(store: pathlib.Path) -> dict:
    """Subprocess environment pointed at ``store``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_STORE_DIR"] = str(store)
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_FAULT_SEED", None)
    return env


def _fail(message: str) -> int:
    """Print a diagnostic and return the failure exit code."""
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    return 1


class Server:
    """One ``repro serve`` subprocess and its HTTP address."""

    def __init__(self, store: pathlib.Path, ready: pathlib.Path,
                 resume: bool = False) -> None:
        args = [sys.executable, "-m", "repro", "serve", "--port", "0",
                "--workers", "2", "--ready-file", str(ready)]
        if resume:
            args.append("--resume")
        self.proc = subprocess.Popen(
            args, env=_env(store), cwd=REPO_ROOT,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        end = time.monotonic() + BOOT_DEADLINE
        while not ready.is_file():
            if self.proc.poll() is not None or time.monotonic() > end:
                raise RuntimeError(
                    f"server did not come up: {self.proc.stderr.read()}"
                )
            time.sleep(0.05)
        info = json.loads(ready.read_text())
        self.base = f"http://{info['host']}:{info['port']}"

    def get(self, path: str, raw: bool = False):
        """GET ``path``; returns ``(status, body)``."""
        try:
            with urllib.request.urlopen(self.base + path, timeout=60) as r:
                body = r.read()
                return r.status, (body if raw else json.loads(body))
        except urllib.error.HTTPError as e:
            return e.code, json.loads(e.read())

    def post(self, path: str, payload: dict):
        """POST JSON to ``path``; returns ``(status, decoded body)``."""
        req = urllib.request.Request(
            self.base + path, data=json.dumps(payload).encode(),
            method="POST",
        )
        try:
            with urllib.request.urlopen(req, timeout=60) as r:
                return r.status, json.loads(r.read())
        except urllib.error.HTTPError as e:
            return e.code, json.loads(e.read())

    def wait_job(self, job_id: str) -> dict:
        """Poll one job to a terminal state."""
        end = time.monotonic() + JOB_DEADLINE
        while time.monotonic() < end:
            status, record = self.get(f"/jobs/{job_id}")
            if status == 200 and record["state"] in ("done", "failed"):
                return record
            time.sleep(0.1)
        raise RuntimeError(f"job {job_id} did not finish")

    def terminate(self) -> int:
        """SIGTERM the server and return its exit status."""
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=120)

    def kill(self) -> None:
        """Hard-kill (cleanup path only)."""
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()


def serve_smoke(workdir: pathlib.Path, scale: float) -> int:
    """Run the boot + coalesce + drain + resume smoke; return exit code."""
    store = workdir / "store"
    spec = {"kind": "figure", "figure": "fig1", "scale": scale,
            "benchmarks": ["npb-is"]}

    print("serve_smoke: [1/5] booting repro serve ...")
    server = Server(store, workdir / "ready.json")
    try:
        status, health = server.get("/healthz")
        if (status, health.get("status")) != (200, "ok"):
            return _fail(f"healthz: {status} {health}")

        print("serve_smoke: [2/5] two concurrent identical submissions ...")
        results: list[tuple[int, dict]] = []
        lock = threading.Lock()

        def _submit() -> None:
            response = server.post("/jobs", spec)
            with lock:
                results.append(response)

        threads = [threading.Thread(target=_submit) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if sorted(s for s, _ in results) != [202, 202]:
            return _fail(f"submissions not accepted: {results}")
        records = [server.wait_job(r["id"]) for _, r in results]
        if any(r["state"] != "done" for r in records):
            return _fail(f"jobs did not complete: {records}")
        if records[0]["artifacts"] != records[1]["artifacts"]:
            return _fail(f"artifact mismatch across completions: {records}")
        stats = server.get("/stats")[1]["jobs"]
        if stats["computations"] != 1:
            return _fail(
                f"2 identical submissions ran {stats['computations']} "
                f"computations (wanted 1 — coalescing broke): {stats}"
            )
        puts_after_first = server.get("/stats")[1]["store"]["puts"]
        print(
            f"serve_smoke: coalesced OK — 1 computation, "
            f"{stats['coalesced']} coalesced + {stats['cache_hits']} warm, "
            f"{puts_after_first} store write(s)"
        )

        print("serve_smoke: [3/5] third submission must be a warm hit ...")
        status, third = server.post("/jobs", spec)
        if (status, third["state"], third["cached"]) != (200, "done", True):
            return _fail(f"third submission not served warm: {third}")
        if server.get("/stats")[1]["store"]["puts"] != puts_after_first:
            return _fail("warm completion wrote to the store")

        print("serve_smoke: [4/5] artifact fetch by store key ...")
        [(kind, key)] = third["artifacts"]
        status, body = server.get(f"/artifacts/{kind}/{key}", raw=True)
        if status != 200 or not body:
            return _fail(f"artifact fetch: {status}, {len(body)} bytes")
        print(f"serve_smoke: fetched {kind}/{key[:16]} ({len(body)} bytes)")

        print("serve_smoke: [5/5] SIGTERM drain ...")
        code = server.terminate()
        if code != 0:
            return _fail(f"drained server exited {code}, wanted 0")
    finally:
        server.kill()

    revived = Server(store, workdir / "ready2.json", resume=True)
    try:
        stats = revived.get("/stats")[1]["jobs"]
        if stats["resumed"] != 3:
            return _fail(f"resume restored {stats['resumed']} jobs, not 3")
        status, jobs = revived.get("/jobs")
        if any(r["state"] != "done" for r in jobs["jobs"]):
            return _fail(f"resumed jobs not all done: {jobs}")
        code = revived.terminate()
        if code != 0:
            return _fail(f"resumed server exited {code}, wanted 0")
    finally:
        revived.kill()

    print("serve_smoke: OK — boots, coalesces, serves warm, drains, resumes")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workdir", type=pathlib.Path, default=None,
        help="scratch directory (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.1,
        help="figure-job scale (default: 0.1)",
    )
    args = parser.parse_args(argv)
    if args.workdir is not None:
        args.workdir.mkdir(parents=True, exist_ok=True)
        return serve_smoke(args.workdir, args.scale)
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        return serve_smoke(pathlib.Path(tmp), args.scale)


if __name__ == "__main__":
    sys.exit(main())
