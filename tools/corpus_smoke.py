#!/usr/bin/env python3
"""Corpus smoke: batch-record fuzz seeds, verify, and time the speedup.

The CI corpus job (the PR 7 acceptance check):

1. ``repro trace corpus record 1-4 --scale 0.1`` into a fresh store —
   four fuzzer scenarios, recorded and indexed;
2. ``repro trace corpus verify --workers 1`` — the corpus-wide
   differential-conformance sweep, timed, must exit 0;
3. the same sweep with a worker pool (one worker per CPU, capped at 4),
   timed again, must exit 0 with identical verdict output;
4. assert the parallel sweep's wall-clock speedup over ``--workers 1``
   meets the floor: ``REPRO_SMOKE_MIN_SPEEDUP`` if set, else 2.0 on
   machines with at least 4 CPUs and 1.0 (parity, no regression)
   elsewhere — a single-core runner cannot demonstrate parallelism.

Usage::

    python tools/corpus_smoke.py [--workdir DIR] [--seeds SPEC]
                                 [--scale S] [--threads N]

Exits non-zero with a diagnostic on any failed assertion.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _env(store: pathlib.Path) -> dict:
    """Subprocess environment pointed at ``store``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_STORE_DIR"] = str(store)
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_FAULT_SEED", None)
    return env


def _run(args: list[str], store: pathlib.Path) -> subprocess.CompletedProcess:
    """Run one ``repro`` command to completion, capturing output."""
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=_env(store), cwd=REPO_ROOT, text=True, capture_output=True,
    )


def _fail(message: str) -> int:
    """Print a diagnostic and return the failure exit code."""
    print(f"corpus_smoke: FAIL: {message}", file=sys.stderr)
    return 1


def _speedup_floor() -> float:
    """The asserted parallel-over-serial speedup floor."""
    override = os.environ.get("REPRO_SMOKE_MIN_SPEEDUP")
    if override:
        return float(override)
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        return 2.0
    print(
        f"corpus_smoke: only {cpus} CPU(s) — relaxing the speedup floor "
        f"to 1.0 (parity); set REPRO_SMOKE_MIN_SPEEDUP to override"
    )
    return 1.0


def _verdict_lines(stdout: str) -> list[str]:
    """The sweep's verdict rows (stable across worker counts)."""
    return [
        line for line in stdout.splitlines()
        if line.endswith((" ok", " MISMATCH"))
    ]


def corpus_smoke(
    workdir: pathlib.Path, seeds: str, scale: float, threads: int
) -> int:
    """Run the record + verify + speedup smoke; return an exit code."""
    store = workdir / "store"
    workers = min(4, os.cpu_count() or 1)

    print(f"corpus_smoke: [1/3] record seeds {seeds} at scale {scale} ...")
    result = _run(
        ["trace", "corpus", "record", seeds,
         "--threads", str(threads), "--scale", str(scale)],
        store,
    )
    if result.returncode != 0:
        return _fail(f"corpus record failed:\n{result.stderr}")
    print(result.stdout.strip())

    print("corpus_smoke: [2/3] serial conformance sweep ...")
    started = time.perf_counter()
    serial = _run(["trace", "corpus", "verify", "--workers", "1"], store)
    serial_seconds = time.perf_counter() - started
    if serial.returncode != 0:
        return _fail(
            f"serial verify failed:\n{serial.stdout}\n{serial.stderr}"
        )
    print(f"corpus_smoke: serial sweep OK in {serial_seconds:.2f}s")

    print(f"corpus_smoke: [3/3] parallel sweep ({workers} workers) ...")
    started = time.perf_counter()
    parallel = _run(
        ["trace", "corpus", "verify", "--workers", str(workers)], store
    )
    parallel_seconds = time.perf_counter() - started
    if parallel.returncode != 0:
        return _fail(
            f"parallel verify failed:\n{parallel.stdout}\n{parallel.stderr}"
        )
    if _verdict_lines(parallel.stdout) != _verdict_lines(serial.stdout):
        return _fail(
            "parallel sweep verdicts differ from serial:\n"
            f"--- serial ---\n{serial.stdout}\n"
            f"--- parallel ---\n{parallel.stdout}"
        )

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    floor = _speedup_floor()
    print(
        f"corpus_smoke: parallel sweep OK in {parallel_seconds:.2f}s "
        f"(speedup {speedup:.2f}x, floor {floor:.1f}x)"
    )
    if speedup < floor:
        return _fail(
            f"parallel verify speedup {speedup:.2f}x is below the "
            f"{floor:.1f}x floor ({serial_seconds:.2f}s serial vs "
            f"{parallel_seconds:.2f}s with {workers} workers)"
        )
    print("corpus_smoke: OK — corpus records, verifies, and scales")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workdir", type=pathlib.Path, default=None,
        help="scratch directory (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--seeds", default="1-4",
        help="fuzzer seed spec to record (default: 1-4)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.1,
        help="recording scale (default: 0.1)",
    )
    parser.add_argument(
        "--threads", type=int, default=8,
        help="recorded thread count (default: 8)",
    )
    args = parser.parse_args(argv)
    if args.workdir is not None:
        args.workdir.mkdir(parents=True, exist_ok=True)
        return corpus_smoke(
            args.workdir, args.seeds, args.scale, args.threads
        )
    with tempfile.TemporaryDirectory(prefix="corpus-smoke-") as tmp:
        return corpus_smoke(
            pathlib.Path(tmp), args.seeds, args.scale, args.threads
        )


if __name__ == "__main__":
    sys.exit(main())
